#include "sim/distributed.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <unordered_set>

#include "graph/shortest_paths.h"
#include "metrics/contention.h"
#include "metrics/fairness.h"
#include "util/stopwatch.h"

namespace faircache::sim {

using graph::kInfCost;
using graph::kInvalidNode;
using graph::NodeId;

namespace {

enum class NodeStatus { kActive, kInactive, kAdmin };

// Per-node agent state for one chunk's bidding.
struct Agent {
  NodeStatus status = NodeStatus::kActive;
  NodeId data_source = kInvalidNode;  // where to fetch once frozen
  double fetch_cost = 0.0;  // accumulated contention cost to the source
  // Best FREEZE offer received so far (accepted once α covers it).
  NodeId offer_source = kInvalidNode;
  double offer_cost = kInfCost;
  double alpha = 0.0;
  // Keyed by neighbourhood index (parallel to `neighborhood`).
  std::vector<double> beta;
  std::vector<double> gamma;
  std::vector<char> sent_tight;
  std::vector<char> sent_span;
  // Facility-side state.
  std::vector<NodeId> tight_set;  // T: who TIGHT/SPANed me
  int span_count = 0;
  double paid = 0.0;  // β payments received toward my fairness cost
};

// Control messages that must survive loss: losing one would strand a
// bidder (FREEZE/NADMIN), hide an opening (BADMIN) or starve the ADMIN
// election (SPAN). TIGHT/CC/NPI losses only slow bidding down and are
// absorbed by the watchdog.
bool needs_ack(MessageType type) {
  return type == MessageType::kFreeze || type == MessageType::kNadmin ||
         type == MessageType::kBadmin || type == MessageType::kSpan;
}

// A reliable message awaiting its ACK.
struct PendingSend {
  Message msg;
  int next_resend = 0;
  int backoff = 0;
  int attempts = 1;
};

}  // namespace

core::FairCachingResult DistributedFairCaching::run(
    const core::FairCachingProblem& problem) {
  FAIRCACHE_CHECK(problem.network != nullptr, "problem needs a network");
  FAIRCACHE_CHECK(config_.hop_limit >= 1, "hop limit must be ≥ 1");
  FAIRCACHE_CHECK(config_.alpha_step > 0 && config_.beta_step > 0 &&
                      config_.gamma_step > 0,
                  "step sizes must be positive");

  const graph::Graph& g = *problem.network;
  const int n = g.num_nodes();
  const NodeId producer = problem.producer;

  util::Stopwatch clock;
  core::FairCachingResult result;
  result.algorithm = name();
  result.state = problem.make_initial_state();
  stats_ = MessageStats{};
  total_rounds_ = 0;
  protocol_outcome_ = util::Status();

  // Optional unreliable network. One channel spans the whole run so that
  // CrashEvent rounds index global bus rounds across chunks.
  std::unique_ptr<FaultyChannel> channel;
  if (config_.faults.has_value()) {
    channel = std::make_unique<FaultyChannel>(*config_.faults, n);
    const ReliabilityConfig& rel = config_.reliability;
    FAIRCACHE_CHECK(rel.ack_timeout_rounds >= 3,
                    "RTO below the 2-round ACK RTT would retransmit "
                    "spuriously");
    FAIRCACHE_CHECK(rel.max_attempts >= 1 && rel.max_backoff_rounds >=
                        rel.ack_timeout_rounds,
                    "invalid reliability configuration");
  }

  // k-hop neighbourhoods are topology-only; compute once.
  std::vector<std::vector<NodeId>> neighborhood(
      static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId w : graph::k_hop_neighborhood(g, v, config_.hop_limit)) {
      if (w != v) neighborhood[static_cast<std::size_t>(v)].push_back(w);
    }
  }
  auto nbr_index = [&](NodeId j, NodeId i) -> std::size_t {
    const auto& nbrs = neighborhood[static_cast<std::size_t>(j)];
    const auto pos = std::find(nbrs.begin(), nbrs.end(), i);
    return pos == nbrs.end() ? nbrs.size()
                             : static_cast<std::size_t>(pos - nbrs.begin());
  };

  for (metrics::ChunkId chunk = 0; chunk < problem.num_chunks; ++chunk) {
    MessageBus bus(channel.get());

    // --- NPI: the producer floods the network (one copy per node). A node
    // that misses its copy learns of the chunk lazily from the first
    // protocol message that reaches it (overhearing). ---
    for (NodeId v = 0; v < n; ++v) {
      if (v != producer) {
        bus.send({MessageType::kNpi, producer, v, chunk, kInvalidNode, 0.0});
      }
    }
    std::vector<char> heard_npi(static_cast<std::size_t>(n), 1);
    if (channel) {
      heard_npi.assign(static_cast<std::size_t>(n), 0);
      heard_npi[static_cast<std::size_t>(producer)] = 1;
      for (const Message& m : bus.deliver_round()) {
        if (m.type == MessageType::kNpi) {
          heard_npi[static_cast<std::size_t>(m.to)] = 1;
        }
      }
    } else {
      bus.deliver_round();
    }

    // --- CC: contention collection within k hops. The replies let node j
    // assemble Con_ij for every neighbourhood member i; j only ever bids
    // toward members whose reply actually arrived. On the reliable path
    // every reply arrives and the local view equals the global contention
    // matrix restricted to k-hop pairs (summing per-node CC replies along
    // the BFS path yields exactly that). ---
    const metrics::ContentionMatrix contention(
        g, result.state, config_.instance.path_policy);
    const std::vector<double> fairness =
        config_.instance.fairness.costs(result.state);

    // known[j][idx] = Con_ij learned from i's CC reply (∞ until heard).
    std::vector<std::vector<double>> known(static_cast<std::size_t>(n));
    for (NodeId j = 0; j < n; ++j) {
      known[static_cast<std::size_t>(j)].assign(
          neighborhood[static_cast<std::size_t>(j)].size(), kInfCost);
    }
    std::vector<Message> cc_batch;
    if (!channel) {
      for (NodeId j = 0; j < n; ++j) {
        for (NodeId i : neighborhood[static_cast<std::size_t>(j)]) {
          bus.send({MessageType::kCc, j, i, chunk, kInvalidNode, 0.0});
          bus.send({MessageType::kCcReply, i, j, chunk, i,
                    contention.cost(i, j)});
        }
      }
      cc_batch = bus.deliver_round();
    } else {
      for (NodeId j = 0; j < n; ++j) {
        if (!heard_npi[static_cast<std::size_t>(j)]) continue;
        for (NodeId i : neighborhood[static_cast<std::size_t>(j)]) {
          bus.send({MessageType::kCc, j, i, chunk, kInvalidNode, 0.0});
        }
      }
      for (const Message& m : bus.deliver_round()) {
        if (m.type != MessageType::kCc) continue;
        bus.send({MessageType::kCcReply, m.to, m.from, chunk, m.to,
                  contention.cost(m.to, m.from)});
      }
      cc_batch = bus.deliver_round();
    }
    for (const Message& m : cc_batch) {
      if (m.type != MessageType::kCcReply) continue;
      const std::size_t idx = nbr_index(m.to, m.from);
      if (idx < known[static_cast<std::size_t>(m.to)].size()) {
        known[static_cast<std::size_t>(m.to)][idx] = m.value;
      }
    }

    auto con = [&](NodeId i, NodeId j) { return contention.cost(i, j); };

    // --- Agent setup. ---
    std::vector<Agent> agents(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) {
      auto& agent = agents[static_cast<std::size_t>(v)];
      const std::size_t k =
          neighborhood[static_cast<std::size_t>(v)].size();
      agent.beta.assign(k, 0.0);
      agent.gamma.assign(k, 0.0);
      agent.sent_tight.assign(k, 0);
      agent.sent_span.assign(k, 0);
    }
    // The producer always has the data: it behaves as a frozen node whose
    // source is itself.
    agents[static_cast<std::size_t>(producer)].status =
        NodeStatus::kInactive;
    agents[static_cast<std::size_t>(producer)].data_source = producer;

    auto openable = [&](NodeId i) {
      return i != producer &&
             fairness[static_cast<std::size_t>(i)] != kInfCost &&
             result.state.can_cache(i, chunk);
    };

    // --- Reliable transport (channel path only): every FREEZE / NADMIN /
    // BADMIN / SPAN carries a sequence number, is ACKed by the receiver,
    // deduplicated by seq, and retransmitted with exponential backoff
    // until acknowledged or out of attempts. ---
    std::map<long, PendingSend> pending;  // ordered: deterministic resends
    std::unordered_set<long> seen;
    long next_seq = 0;
    int round = 0;
    auto post = [&](Message m) {
      if (channel && needs_ack(m.type)) {
        m.seq = next_seq++;
        PendingSend p;
        p.msg = m;
        p.backoff = config_.reliability.ack_timeout_rounds;
        p.next_resend = round + p.backoff;
        p.attempts = 1;
        pending.emplace(m.seq, p);
      }
      bus.send(m);
    };

    // Freeze node j onto `source`, reachable at `cost`. A frozen node
    // relays FREEZE offers to every bidder in its T set (Algorithm 2,
    // Receive FREEZE) so the freezing wave keeps moving outward from the
    // producer; the offer carries the accumulated chain cost, and the
    // receiver only accepts once its α bid covers it.
    auto freeze = [&](NodeId j, NodeId source, double cost) {
      auto& agent = agents[static_cast<std::size_t>(j)];
      if (agent.status != NodeStatus::kActive) return;
      agent.status = NodeStatus::kInactive;
      agent.data_source = source;
      agent.fetch_cost = cost;
      for (NodeId t : agent.tight_set) {
        post({MessageType::kFreeze, j, t, chunk, source, cost + con(j, t)});
      }
    };

    // Record an incoming FREEZE offer; accepted in the bidding loop once
    // α_j reaches the offered chain cost.
    auto record_offer = [&](NodeId j, NodeId source, double cost) {
      auto& agent = agents[static_cast<std::size_t>(j)];
      if (agent.status != NodeStatus::kActive) return;
      if (cost < agent.offer_cost) {
        agent.offer_cost = cost;
        agent.offer_source = source;
      }
    };

    auto make_admin = [&](NodeId i) {
      auto& agent = agents[static_cast<std::size_t>(i)];
      agent.status = NodeStatus::kAdmin;
      agent.data_source = i;
      for (NodeId j : agent.tight_set) {
        post({MessageType::kNadmin, i, j, chunk, i, 0.0});
      }
      for (NodeId v = 0; v < n; ++v) {
        if (v != i) {
          post({MessageType::kBadmin, i, v, chunk, i, 0.0});
        }
      }
      // Proactive fetch from the producer happens in the dissemination
      // phase; the cache slot is claimed now.
    };

    // --- Bidding rounds. ---
    int max_rounds = config_.max_rounds;
    if (max_rounds == 0) {
      // Any freeze-offer chain is a simple path, so its cost is bounded by
      // the total contention weight of the network; α crosses that within
      // W/U_α rounds, plus slack for message latency per wave hop.
      const std::vector<double> weights =
          metrics::contention_weights(g, result.state);
      double total_weight = 1.0;
      for (double w : weights) total_weight += w;
      max_rounds = static_cast<int>(std::ceil(
                       total_weight / config_.alpha_step)) +
                   3 * n + 8;
    }

    for (; round < max_rounds; ++round) {
      // Deliver last round's messages.
      for (const Message& m : bus.deliver_round()) {
        if (m.ack) {
          pending.erase(m.seq);
          continue;
        }
        if (m.seq >= 0) {
          // ACK every reliable delivery (the previous ACK may have been
          // lost), then suppress duplicates.
          Message a;
          a.type = m.type;
          a.from = m.to;
          a.to = m.from;
          a.chunk = m.chunk;
          a.seq = m.seq;
          a.ack = true;
          bus.send(a);
          if (!seen.insert(m.seq).second) {
            ++stats_.deduplicated;
            continue;
          }
        }
        heard_npi[static_cast<std::size_t>(m.to)] = 1;
        auto& agent = agents[static_cast<std::size_t>(m.to)];
        switch (m.type) {
          case MessageType::kTight:
          case MessageType::kSpan: {
            if (agent.status == NodeStatus::kInactive) {
              post({MessageType::kFreeze, m.to, m.from, chunk,
                    agent.data_source,
                    agent.fetch_cost + con(m.to, m.from)});
              break;
            }
            if (agent.status == NodeStatus::kAdmin) {
              post({MessageType::kFreeze, m.to, m.from, chunk, m.to,
                    con(m.to, m.from)});
              break;
            }
            if (std::find(agent.tight_set.begin(), agent.tight_set.end(),
                          m.from) == agent.tight_set.end()) {
              agent.tight_set.push_back(m.from);
            }
            if (m.type == MessageType::kSpan) {
              agent.span_count += 1;
              const bool paid_up =
                  agent.paid + 1e-12 >=
                  fairness[static_cast<std::size_t>(m.to)];
              if (openable(m.to) && paid_up &&
                  agent.span_count >= config_.span_threshold) {
                make_admin(m.to);
              }
            }
            break;
          }
          case MessageType::kFreeze:
            record_offer(m.to, m.source, m.value);
            break;
          case MessageType::kNadmin: {
            // The admin accepted my SPAN: connect immediately.
            const std::size_t idx = nbr_index(m.to, m.source);
            const auto& costs = known[static_cast<std::size_t>(m.to)];
            freeze(m.to, m.source,
                   idx < costs.size() ? costs[idx] : con(m.source, m.to));
            break;
          }
          case MessageType::kBadmin: {
            // Freeze if my resource bid toward this admin was adequate
            // (β_j > Con_j in the paper's notation).
            if (agent.status != NodeStatus::kActive) break;
            const std::size_t idx = nbr_index(m.to, m.source);
            if (idx >= agent.beta.size()) break;
            const double cij = known[static_cast<std::size_t>(m.to)][idx];
            if (cij != kInfCost && agent.beta[idx] > cij) {
              freeze(m.to, m.source, cij);
            }
            break;
          }
          case MessageType::kNpi:
          case MessageType::kCc:
          case MessageType::kCcReply:
          case MessageType::kCount_:
            break;  // informational
        }
      }

      // Retransmit reliable messages whose ACK timed out; give up after
      // max_attempts (the watchdog and crash repair cover the remainder).
      if (channel) {
        const ReliabilityConfig& rel = config_.reliability;
        for (auto it = pending.begin(); it != pending.end();) {
          PendingSend& p = it->second;
          if (round >= p.next_resend) {
            if (p.attempts >= rel.max_attempts) {
              it = pending.erase(it);
              continue;
            }
            // A crashed sender cannot retransmit; it resumes on restart.
            if (channel->alive(p.msg.from)) {
              bus.resend(p.msg);
              ++p.attempts;
              p.backoff = std::min(2 * p.backoff, rel.max_backoff_rounds);
            }
            p.next_resend = round + p.backoff;
          }
          ++it;
        }
      }

      // Check termination: all live nodes frozen (or admin) and no
      // application message still in flight. Crashed nodes don't block
      // termination — if they restart later they are repaired onto the
      // producer.
      bool everyone_settled = true;
      for (NodeId v = 0; v < n && everyone_settled; ++v) {
        if (agents[static_cast<std::size_t>(v)].status ==
                NodeStatus::kActive &&
            (!channel || channel->alive(v))) {
          everyone_settled = false;
        }
      }
      const bool all_done = everyone_settled && bus.app_idle();
      if (all_done) break;

      // Grow bids, accept affordable offers, emit requests.
      for (NodeId j = 0; j < n; ++j) {
        auto& agent = agents[static_cast<std::size_t>(j)];
        if (agent.status != NodeStatus::kActive) continue;
        if (channel &&
            (!channel->alive(j) || !heard_npi[static_cast<std::size_t>(j)])) {
          continue;  // down, or hasn't heard of the chunk yet
        }
        agent.alpha += config_.alpha_step;
        if (agent.alpha + 1e-12 >= agent.offer_cost) {
          freeze(j, agent.offer_source, agent.offer_cost);
          continue;
        }
        const auto& nbrs = neighborhood[static_cast<std::size_t>(j)];
        const auto& costs = known[static_cast<std::size_t>(j)];
        for (std::size_t idx = 0; idx < nbrs.size(); ++idx) {
          const NodeId i = nbrs[idx];
          const double cij = costs[idx];
          if (cij == kInfCost || agent.alpha + 1e-12 < cij) continue;
          if (!agent.sent_tight[idx]) {
            agent.sent_tight[idx] = 1;
            bus.send({MessageType::kTight, j, i, chunk, kInvalidNode, 0.0});
          }
          // Payment toward i's fairness cost, then relay bids. The
          // payment is tracked on the facility side (piggybacked on the
          // bidding traffic; no extra message type in Table II).
          auto& facility = agents[static_cast<std::size_t>(i)];
          const double fi = fairness[static_cast<std::size_t>(i)];
          if (fi != kInfCost && facility.paid + 1e-12 < fi) {
            const double pay =
                std::min(config_.beta_step, fi - facility.paid);
            agent.beta[idx] += pay;
            facility.paid += pay;
          } else {
            agent.gamma[idx] += config_.gamma_step;
            if (!agent.sent_span[idx] &&
                agent.gamma[idx] + 1e-12 >= cij) {
              agent.sent_span[idx] = 1;
              post({MessageType::kSpan, j, i, chunk, kInvalidNode, 0.0});
            }
          }
        }
      }
    }
    total_rounds_ += round;

    if (channel) {
      // Termination watchdog: any live node still bidding at the round
      // bound is force-frozen onto the producer, so the protocol always
      // terminates with every survivor assigned a source.
      for (NodeId v = 0; v < n; ++v) {
        auto& agent = agents[static_cast<std::size_t>(v)];
        if (agent.status == NodeStatus::kActive && channel->alive(v)) {
          agent.status = NodeStatus::kInactive;
          agent.data_source = producer;
          agent.fetch_cost = con(producer, v);
          ++stats_.forced_freezes;
        }
      }
    } else {
      FAIRCACHE_CHECK(
          std::all_of(agents.begin(), agents.end(),
                      [](const Agent& a) {
                        return a.status != NodeStatus::kActive;
                      }),
          "distributed bidding did not converge within the round budget");
    }

    // --- Harvest: ADMIN nodes cache the chunk. An admin that is down at
    // harvest time never completed its proactive fetch and caches
    // nothing. ---
    core::ChunkPlacement placement;
    placement.chunk = chunk;
    placement.solver_rounds = round;
    for (NodeId v = 0; v < n; ++v) {
      if (agents[static_cast<std::size_t>(v)].status == NodeStatus::kAdmin &&
          result.state.can_cache(v, chunk)) {
        if (channel && !channel->alive(v)) continue;
        result.state.add(v, chunk);
        placement.cache_nodes.push_back(v);
      }
    }

    // Record who each node would fetch from; repair sources that point at
    // a casualty (ADMIN-failure recovery: fall back to the best FREEZE
    // offer, else the producer).
    placement.assignment.assign(static_cast<std::size_t>(n), kInvalidNode);
    for (NodeId v = 0; v < n; ++v) {
      const auto& agent = agents[static_cast<std::size_t>(v)];
      if (v == producer) {
        placement.assignment[static_cast<std::size_t>(v)] = producer;
        continue;
      }
      NodeId src = agent.data_source;
      if (channel) {
        auto usable = [&](NodeId s) {
          return s == producer ||
                 (s != kInvalidNode && channel->alive(s) &&
                  result.state.holds(s, chunk));
        };
        if (!usable(src)) {
          const bool had_source = src != kInvalidNode;
          src = usable(agent.offer_source) ? agent.offer_source : producer;
          if (had_source) ++stats_.repaired_sources;
        }
      }
      placement.assignment[static_cast<std::size_t>(v)] = src;
    }
    result.placements.push_back(std::move(placement));
    stats_ += bus.stats();
    if (channel) channel->flush();  // stale traffic never crosses chunks
  }

  if (channel) {
    // Final repair against the end-of-run liveness mask: data on nodes
    // that are down now is gone, and every surviving node whose source
    // died falls back to the producer.
    result.alive = channel->alive_mask();
    for (NodeId v = 0; v < n; ++v) {
      if (result.alive[static_cast<std::size_t>(v)]) continue;
      const std::vector<metrics::ChunkId> lost = result.state.chunks_on(v);
      for (metrics::ChunkId c : lost) result.state.remove(v, c);
    }
    for (auto& placement : result.placements) {
      auto& nodes = placement.cache_nodes;
      nodes.erase(std::remove_if(nodes.begin(), nodes.end(),
                                 [&](NodeId v) {
                                   return !result.alive
                                       [static_cast<std::size_t>(v)];
                                 }),
                  nodes.end());
      for (NodeId v = 0; v < n; ++v) {
        auto& src = placement.assignment[static_cast<std::size_t>(v)];
        if (!result.alive[static_cast<std::size_t>(v)]) {
          src = kInvalidNode;  // casualties consume nothing
          continue;
        }
        if (v == producer) continue;
        const bool ok =
            src == producer ||
            (src != kInvalidNode &&
             result.alive[static_cast<std::size_t>(src)] &&
             result.state.holds(src, placement.chunk));
        if (!ok) {
          src = producer;
          ++stats_.repaired_sources;
        }
      }
    }
    stats_ += channel->stats();
  }

  if (stats_.forced_freezes > 0) {
    protocol_outcome_ = util::Status::resource_exhausted(
        std::to_string(stats_.forced_freezes) +
        " straggler(s) force-frozen at the max_rounds watchdog bound");
  }

  result.runtime_seconds = clock.elapsed_seconds();
  return result;
}

}  // namespace faircache::sim
