#include "sim/distributed.h"

#include <algorithm>
#include <cmath>

#include "graph/shortest_paths.h"
#include "metrics/contention.h"
#include "metrics/fairness.h"
#include "util/stopwatch.h"

namespace faircache::sim {

using graph::kInfCost;
using graph::kInvalidNode;
using graph::NodeId;

namespace {

enum class NodeStatus { kActive, kInactive, kAdmin };

// Per-node agent state for one chunk's bidding.
struct Agent {
  NodeStatus status = NodeStatus::kActive;
  NodeId data_source = kInvalidNode;  // where to fetch once frozen
  double fetch_cost = 0.0;  // accumulated contention cost to the source
  // Best FREEZE offer received so far (accepted once α covers it).
  NodeId offer_source = kInvalidNode;
  double offer_cost = kInfCost;
  double alpha = 0.0;
  // Keyed by neighbourhood index (parallel to `neighborhood`).
  std::vector<double> beta;
  std::vector<double> gamma;
  std::vector<char> sent_tight;
  std::vector<char> sent_span;
  // Facility-side state.
  std::vector<NodeId> tight_set;  // T: who TIGHT/SPANed me
  int span_count = 0;
  double paid = 0.0;  // β payments received toward my fairness cost
};

}  // namespace

core::FairCachingResult DistributedFairCaching::run(
    const core::FairCachingProblem& problem) {
  FAIRCACHE_CHECK(problem.network != nullptr, "problem needs a network");
  FAIRCACHE_CHECK(config_.hop_limit >= 1, "hop limit must be ≥ 1");
  FAIRCACHE_CHECK(config_.alpha_step > 0 && config_.beta_step > 0 &&
                      config_.gamma_step > 0,
                  "step sizes must be positive");

  const graph::Graph& g = *problem.network;
  const int n = g.num_nodes();
  const NodeId producer = problem.producer;

  util::Stopwatch clock;
  core::FairCachingResult result;
  result.algorithm = name();
  result.state = problem.make_initial_state();
  stats_ = MessageStats{};
  total_rounds_ = 0;

  // k-hop neighbourhoods are topology-only; compute once.
  std::vector<std::vector<NodeId>> neighborhood(
      static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId w : graph::k_hop_neighborhood(g, v, config_.hop_limit)) {
      if (w != v) neighborhood[static_cast<std::size_t>(v)].push_back(w);
    }
  }

  for (metrics::ChunkId chunk = 0; chunk < problem.num_chunks; ++chunk) {
    MessageBus bus;

    // --- NPI: the producer floods the network (one copy per node). ---
    for (NodeId v = 0; v < n; ++v) {
      if (v != producer) {
        bus.send({MessageType::kNpi, producer, v, chunk, kInvalidNode, 0.0});
      }
    }
    bus.deliver_round();

    // --- CC: contention collection within k hops. The replies let node j
    // assemble Con_ij for every neighbourhood member i. We model the
    // result with the global contention matrix restricted to k-hop pairs,
    // which is exactly what summing per-node CC replies along the BFS path
    // yields. ---
    const metrics::ContentionMatrix contention(
        g, result.state, config_.instance.path_policy);
    const std::vector<double> fairness =
        config_.instance.fairness.costs(result.state);
    for (NodeId j = 0; j < n; ++j) {
      for (NodeId i : neighborhood[static_cast<std::size_t>(j)]) {
        bus.send({MessageType::kCc, j, i, chunk, kInvalidNode, 0.0});
        bus.send({MessageType::kCcReply, i, j, chunk, i,
                  contention.cost(i, j)});
      }
    }
    bus.deliver_round();

    auto con = [&](NodeId i, NodeId j) { return contention.cost(i, j); };

    // --- Agent setup. ---
    std::vector<Agent> agents(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) {
      auto& agent = agents[static_cast<std::size_t>(v)];
      const std::size_t k =
          neighborhood[static_cast<std::size_t>(v)].size();
      agent.beta.assign(k, 0.0);
      agent.gamma.assign(k, 0.0);
      agent.sent_tight.assign(k, 0);
      agent.sent_span.assign(k, 0);
    }
    // The producer always has the data: it behaves as a frozen node whose
    // source is itself.
    agents[static_cast<std::size_t>(producer)].status =
        NodeStatus::kInactive;
    agents[static_cast<std::size_t>(producer)].data_source = producer;

    auto openable = [&](NodeId i) {
      return i != producer &&
             fairness[static_cast<std::size_t>(i)] != kInfCost &&
             result.state.can_cache(i, chunk);
    };

    // Freeze node j onto `source`, reachable at `cost`. A frozen node
    // relays FREEZE offers to every bidder in its T set (Algorithm 2,
    // Receive FREEZE) so the freezing wave keeps moving outward from the
    // producer; the offer carries the accumulated chain cost, and the
    // receiver only accepts once its α bid covers it.
    auto freeze = [&](NodeId j, NodeId source, double cost) {
      auto& agent = agents[static_cast<std::size_t>(j)];
      if (agent.status != NodeStatus::kActive) return;
      agent.status = NodeStatus::kInactive;
      agent.data_source = source;
      agent.fetch_cost = cost;
      for (NodeId t : agent.tight_set) {
        bus.send({MessageType::kFreeze, j, t, chunk, source,
                  cost + con(j, t)});
      }
    };

    // Record an incoming FREEZE offer; accepted in the bidding loop once
    // α_j reaches the offered chain cost.
    auto record_offer = [&](NodeId j, NodeId source, double cost) {
      auto& agent = agents[static_cast<std::size_t>(j)];
      if (agent.status != NodeStatus::kActive) return;
      if (cost < agent.offer_cost) {
        agent.offer_cost = cost;
        agent.offer_source = source;
      }
    };

    auto make_admin = [&](NodeId i) {
      auto& agent = agents[static_cast<std::size_t>(i)];
      agent.status = NodeStatus::kAdmin;
      agent.data_source = i;
      for (NodeId j : agent.tight_set) {
        bus.send({MessageType::kNadmin, i, j, chunk, i, 0.0});
      }
      for (NodeId v = 0; v < n; ++v) {
        if (v != i) {
          bus.send({MessageType::kBadmin, i, v, chunk, i, 0.0});
        }
      }
      // Proactive fetch from the producer happens in the dissemination
      // phase; the cache slot is claimed now.
    };

    // --- Bidding rounds. ---
    int max_rounds = config_.max_rounds;
    if (max_rounds == 0) {
      // Any freeze-offer chain is a simple path, so its cost is bounded by
      // the total contention weight of the network; α crosses that within
      // W/U_α rounds, plus slack for message latency per wave hop.
      const std::vector<double> weights =
          metrics::contention_weights(g, result.state);
      double total_weight = 1.0;
      for (double w : weights) total_weight += w;
      max_rounds = static_cast<int>(std::ceil(
                       total_weight / config_.alpha_step)) +
                   3 * n + 8;
    }

    int round = 0;
    for (; round < max_rounds; ++round) {
      // Deliver last round's messages.
      for (const Message& m : bus.deliver_round()) {
        auto& agent = agents[static_cast<std::size_t>(m.to)];
        switch (m.type) {
          case MessageType::kTight:
          case MessageType::kSpan: {
            if (agent.status == NodeStatus::kInactive) {
              bus.send({MessageType::kFreeze, m.to, m.from, chunk,
                        agent.data_source,
                        agent.fetch_cost + con(m.to, m.from)});
              break;
            }
            if (agent.status == NodeStatus::kAdmin) {
              bus.send({MessageType::kFreeze, m.to, m.from, chunk, m.to,
                        con(m.to, m.from)});
              break;
            }
            if (std::find(agent.tight_set.begin(), agent.tight_set.end(),
                          m.from) == agent.tight_set.end()) {
              agent.tight_set.push_back(m.from);
            }
            if (m.type == MessageType::kSpan) {
              agent.span_count += 1;
              const bool paid_up =
                  agent.paid + 1e-12 >=
                  fairness[static_cast<std::size_t>(m.to)];
              if (openable(m.to) && paid_up &&
                  agent.span_count >= config_.span_threshold) {
                make_admin(m.to);
              }
            }
            break;
          }
          case MessageType::kFreeze:
            record_offer(m.to, m.source, m.value);
            break;
          case MessageType::kNadmin:
            // The admin accepted my SPAN: connect immediately.
            freeze(m.to, m.source, con(m.source, m.to));
            break;
          case MessageType::kBadmin: {
            // Freeze if my resource bid toward this admin was adequate
            // (β_j > Con_j in the paper's notation).
            if (agent.status != NodeStatus::kActive) break;
            const auto& nbrs = neighborhood[static_cast<std::size_t>(m.to)];
            const auto pos = std::find(nbrs.begin(), nbrs.end(), m.source);
            if (pos == nbrs.end()) break;
            const auto idx =
                static_cast<std::size_t>(pos - nbrs.begin());
            if (agent.beta[idx] > con(m.source, m.to)) {
              freeze(m.to, m.source, con(m.source, m.to));
            }
            break;
          }
          case MessageType::kNpi:
          case MessageType::kCc:
          case MessageType::kCcReply:
          case MessageType::kCount_:
            break;  // informational
        }
      }

      // Check termination: all nodes frozen (or admin).
      const bool all_done =
          std::all_of(agents.begin(), agents.end(), [](const Agent& a) {
            return a.status != NodeStatus::kActive;
          }) &&
          bus.idle();
      if (all_done) break;

      // Grow bids, accept affordable offers, emit requests.
      for (NodeId j = 0; j < n; ++j) {
        auto& agent = agents[static_cast<std::size_t>(j)];
        if (agent.status != NodeStatus::kActive) continue;
        agent.alpha += config_.alpha_step;
        if (agent.alpha + 1e-12 >= agent.offer_cost) {
          freeze(j, agent.offer_source, agent.offer_cost);
          continue;
        }
        const auto& nbrs = neighborhood[static_cast<std::size_t>(j)];
        for (std::size_t idx = 0; idx < nbrs.size(); ++idx) {
          const NodeId i = nbrs[idx];
          const double cij = con(i, j);
          if (cij == kInfCost || agent.alpha + 1e-12 < cij) continue;
          if (!agent.sent_tight[idx]) {
            agent.sent_tight[idx] = 1;
            bus.send({MessageType::kTight, j, i, chunk, kInvalidNode, 0.0});
          }
          // Payment toward i's fairness cost, then relay bids. The
          // payment is tracked on the facility side (piggybacked on the
          // bidding traffic; no extra message type in Table II).
          auto& facility = agents[static_cast<std::size_t>(i)];
          const double fi = fairness[static_cast<std::size_t>(i)];
          if (fi != kInfCost && facility.paid + 1e-12 < fi) {
            const double pay =
                std::min(config_.beta_step, fi - facility.paid);
            agent.beta[idx] += pay;
            facility.paid += pay;
          } else {
            agent.gamma[idx] += config_.gamma_step;
            if (!agent.sent_span[idx] &&
                agent.gamma[idx] + 1e-12 >= cij) {
              agent.sent_span[idx] = 1;
              bus.send({MessageType::kSpan, j, i, chunk, kInvalidNode,
                        0.0});
            }
          }
        }
      }
    }
    total_rounds_ += round;
    FAIRCACHE_CHECK(
        std::all_of(agents.begin(), agents.end(),
                    [](const Agent& a) {
                      return a.status != NodeStatus::kActive;
                    }),
        "distributed bidding did not converge within the round budget");

    // --- Harvest: ADMIN nodes cache the chunk. ---
    core::ChunkPlacement placement;
    placement.chunk = chunk;
    placement.solver_rounds = round;
    for (NodeId v = 0; v < n; ++v) {
      if (agents[static_cast<std::size_t>(v)].status == NodeStatus::kAdmin &&
          result.state.can_cache(v, chunk)) {
        result.state.add(v, chunk);
        placement.cache_nodes.push_back(v);
      }
    }
    result.placements.push_back(std::move(placement));
    stats_ += bus.stats();
  }

  result.runtime_seconds = clock.elapsed_seconds();
  return result;
}

}  // namespace faircache::sim
