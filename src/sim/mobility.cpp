#include "sim/mobility.h"

#include <algorithm>
#include <cmath>

#include "graph/shortest_paths.h"

namespace faircache::sim {

RandomWaypointModel::RandomWaypointModel(MobilityConfig config,
                                         util::Rng& rng)
    : config_(config), rng_(rng.fork()) {
  FAIRCACHE_CHECK(config_.num_nodes >= 1, "need at least one node");
  FAIRCACHE_CHECK(config_.area > 0 && config_.radius > 0,
                  "area/radius must be positive");
  FAIRCACHE_CHECK(
      0 < config_.min_speed && config_.min_speed <= config_.max_speed,
      "speed range invalid");
  const auto n = static_cast<std::size_t>(config_.num_nodes);
  x_.resize(n);
  y_.resize(n);
  wx_.resize(n);
  wy_.resize(n);
  speed_.resize(n);
  pause_.assign(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    x_[v] = rng_.uniform(0.0, config_.area);
    y_[v] = rng_.uniform(0.0, config_.area);
    pick_waypoint(v);
  }
}

void RandomWaypointModel::pick_waypoint(std::size_t v) {
  wx_[v] = rng_.uniform(0.0, config_.area);
  wy_[v] = rng_.uniform(0.0, config_.area);
  speed_[v] = rng_.uniform(config_.min_speed, config_.max_speed);
}

void RandomWaypointModel::step(double dt) {
  FAIRCACHE_CHECK(dt >= 0, "negative time step");
  time_ += dt;
  for (std::size_t v = 0; v < x_.size(); ++v) {
    double remaining = dt;
    while (remaining > 0) {
      if (pause_[v] > 0) {
        const double wait = std::min(pause_[v], remaining);
        pause_[v] -= wait;
        remaining -= wait;
        continue;
      }
      const double dx = wx_[v] - x_[v];
      const double dy = wy_[v] - y_[v];
      const double dist = std::sqrt(dx * dx + dy * dy);
      const double travel = speed_[v] * remaining;
      if (travel >= dist) {
        // Arrive, pause, and choose a new waypoint.
        x_[v] = wx_[v];
        y_[v] = wy_[v];
        remaining -= speed_[v] > 0 ? dist / speed_[v] : remaining;
        pause_[v] = config_.pause_time;
        pick_waypoint(v);
      } else {
        x_[v] += dx / dist * travel;
        y_[v] += dy / dist * travel;
        remaining = 0;
      }
    }
  }
}

graph::Graph RandomWaypointModel::topology() const {
  graph::Graph g(config_.num_nodes);
  const double r2 = config_.radius * config_.radius;
  for (graph::NodeId u = 0; u < config_.num_nodes; ++u) {
    for (graph::NodeId v = u + 1; v < config_.num_nodes; ++v) {
      const double dx = x_[static_cast<std::size_t>(u)] -
                        x_[static_cast<std::size_t>(v)];
      const double dy = y_[static_cast<std::size_t>(u)] -
                        y_[static_cast<std::size_t>(v)];
      if (dx * dx + dy * dy <= r2) g.add_edge(u, v);
    }
  }
  return g;
}

PlacementRobustness evaluate_robustness(const graph::Graph& snapshot,
                                        const metrics::CacheState& placement,
                                        int num_chunks,
                                        const std::vector<char>* alive) {
  FAIRCACHE_CHECK(snapshot.num_nodes() == placement.num_nodes(),
                  "snapshot / placement size mismatch");
  FAIRCACHE_CHECK(num_chunks >= 0, "negative chunk count");
  FAIRCACHE_CHECK(alive == nullptr ||
                      static_cast<int>(alive->size()) ==
                          snapshot.num_nodes(),
                  "liveness mask size mismatch");
  const auto is_alive = [&](graph::NodeId v) {
    return alive == nullptr || (*alive)[static_cast<std::size_t>(v)] != 0;
  };
  PlacementRobustness result;
  double hop_sum = 0.0;

  for (metrics::ChunkId chunk = 0; chunk < num_chunks; ++chunk) {
    std::vector<graph::NodeId> sources = placement.holders(chunk);
    sources.push_back(placement.producer());
    // Multi-source BFS: distance from the nearest copy. Dead nodes are
    // neither seeded nor relayed through; an out-of-range producer (no
    // producer present in the snapshot) simply contributes no source.
    std::vector<int> dist(static_cast<std::size_t>(snapshot.num_nodes()),
                          graph::kUnreachable);
    std::vector<graph::NodeId> frontier;
    for (graph::NodeId s : sources) {
      if (s < 0 || s >= snapshot.num_nodes() || !is_alive(s)) continue;
      if (dist[static_cast<std::size_t>(s)] == 0) continue;
      dist[static_cast<std::size_t>(s)] = 0;
      frontier.push_back(s);
    }
    std::size_t head = 0;
    while (head < frontier.size()) {
      const graph::NodeId v = frontier[head++];
      for (graph::NodeId w : snapshot.neighbors(v)) {
        if (!is_alive(w)) continue;
        if (dist[static_cast<std::size_t>(w)] == graph::kUnreachable) {
          dist[static_cast<std::size_t>(w)] =
              dist[static_cast<std::size_t>(v)] + 1;
          frontier.push_back(w);
        }
      }
    }
    for (graph::NodeId j = 0; j < snapshot.num_nodes(); ++j) {
      if (j == placement.producer() || !is_alive(j)) continue;
      ++result.pairs;
      if (dist[static_cast<std::size_t>(j)] != graph::kUnreachable) {
        ++result.reachable_pairs;
        hop_sum += dist[static_cast<std::size_t>(j)];
      }
    }
  }
  result.reachable_fraction =
      result.pairs == 0 ? 1.0
                        : static_cast<double>(result.reachable_pairs) /
                              static_cast<double>(result.pairs);
  result.mean_hops =
      result.reachable_pairs == 0
          ? 0.0
          : hop_sum / static_cast<double>(result.reachable_pairs);
  return result;
}

}  // namespace faircache::sim
