#pragma once

// Fault injection for the distributed algorithm's message substrate.
//
// The paper's Algorithm 2 runs over a multi-hop *wireless* edge network, so
// a faithful robustness study has to admit message loss, duplication, delay,
// reordering, and node churn. A FaultPlan is a deterministic, seeded
// description of those faults; a FaultyChannel executes the plan between
// MessageBus::send and delivery. With no channel attached the bus behaves
// exactly as before (bit-identical results), and even an attached channel
// with an all-zero plan leaves the application-level message flow unchanged
// — only the reliability layer (ACKs, see distributed.cpp) rides along.
//
// See docs/FAULTS.md for the reliability model and the guarantees the
// hardened protocol provides under this channel.

#include <cstdint>
#include <vector>

#include "sim/messages.h"
#include "util/rng.h"
#include "util/status.h"

namespace faircache::sim {

// One fail-stop episode: `node` is down for bus rounds
// [crash_round, restart_round). `restart_round < 0` means the node never
// comes back. While down, a node neither sends nor receives (the channel
// drops both directions) and its agent executes no protocol steps.
struct CrashEvent {
  graph::NodeId node = graph::kInvalidNode;
  int crash_round = 0;
  int restart_round = -1;  // exclusive; -1 = permanent crash
};

// One link outage: the undirected link {u, v} is down for bus rounds
// [down_round, up_round). `up_round < 0` means it never comes back. While
// down, every direct (u, v) or (v, u) transmission is lost (counted as
// link_dropped); multi-hop routes around the link are the protocol's
// business, not the channel's.
struct LinkFault {
  graph::NodeId u = graph::kInvalidNode;
  graph::NodeId v = graph::kInvalidNode;
  int down_round = 0;
  int up_round = -1;  // exclusive; -1 = permanently down
};

// Deterministic, seeded fault schedule. All probabilistic faults draw from
// one xoshiro stream seeded with `seed`, in message order, so a fixed plan
// reproduces an identical fault pattern run after run.
struct FaultPlan {
  std::uint64_t seed = 0x5eed;
  double drop_rate = 0.0;       // per-transmission loss probability
  double duplicate_rate = 0.0;  // probability a delivery is duplicated
  double delay_rate = 0.0;      // probability a delivery is postponed
  int max_delay_rounds = 2;     // delayed messages arrive 1..max rounds late
  bool reorder = false;         // shuffle each round's delivery order
  std::vector<CrashEvent> crashes;
  std::vector<LinkFault> link_faults;

  bool has_faults() const {
    return drop_rate > 0.0 || duplicate_rate > 0.0 || delay_rate > 0.0 ||
           reorder || !crashes.empty() || !link_faults.empty();
  }
};

// Non-throwing schedule validation: rates must be probabilities, delays at
// least one round late, every crash/link event in range with a
// chronologically valid window (no negative times, restart/up strictly
// after the outage starts), and no two windows for the same node or link
// overlapping (back-to-back windows sharing an endpoint are fine). The
// FaultyChannel constructor enforces exactly these predicates with
// FAIRCACHE_CHECK; callers with untrusted schedules validate first.
util::Status validate_fault_plan(const FaultPlan& plan, int num_nodes);

// Knobs of the ACK/retransmission layer in sim::DistributedFairCaching.
struct ReliabilityConfig {
  int ack_timeout_rounds = 4;  // initial retransmission timeout (RTO)
  int max_backoff_rounds = 64; // RTO doubles per attempt up to this cap
  int max_attempts = 8;        // give up after this many transmissions
};

// Executes a FaultPlan. The channel sits between a MessageBus outbox and
// its delivery batch: MessageBus::deliver_round() hands the round's outbox
// to transmit(), which advances the channel's global round counter, applies
// crashes/drops/delays/duplicates/reordering, and returns what actually
// arrives this round. One channel is shared across every per-chunk bus of a
// run, so CrashEvent rounds index the whole run's bus rounds.
class FaultyChannel {
 public:
  explicit FaultyChannel(FaultPlan plan, int num_nodes);

  // Applies the plan to `outbox`, merges in previously delayed messages now
  // due, and returns this round's deliveries. Advances the round counter.
  std::vector<Message> transmit(std::vector<Message> outbox);

  // Liveness of `v` at the current round.
  bool alive(graph::NodeId v) const;
  // Liveness mask at the current round (indexed by node id).
  std::vector<char> alive_mask() const;

  int round() const { return round_; }
  // Non-ACK messages still queued for a later round.
  long app_in_flight() const;
  // Discards everything still in flight (used at chunk boundaries);
  // discarded application messages count as dropped.
  void flush();

  // Channel-side fault counters (dropped / crash_dropped / link_dropped /
  // duplicated / delayed); the `sent` array stays zero.
  const MessageStats& stats() const { return stats_; }

 private:
  bool alive_at(graph::NodeId v, int round) const;
  bool link_up_at(graph::NodeId u, graph::NodeId v, int round) const;

  FaultPlan plan_;
  int num_nodes_ = 0;
  int round_ = 0;
  util::Rng rng_;
  // Messages postponed by the delay fault, keyed by due round. Kept sorted
  // by (due_round, arrival order) for determinism.
  struct Delayed {
    int due_round;
    Message message;
  };
  std::vector<Delayed> delayed_;
  MessageStats stats_;
};

}  // namespace faircache::sim
