#include "sim/state_faults.h"

#include <utility>

#include "util/rng.h"

namespace faircache::sim {

util::Status validate_state_fault_plan(const StateFaultPlan& plan) {
  for (const StateFault& fault : plan.faults) {
    if (fault.build < 1) {
      return util::Status::invalid_input(
          "state fault scheduled before build 1");
    }
  }
  return util::Status();  // OK
}

namespace {

// Maps one scheduled fault to the concrete corruption descriptor. The
// slot index is drawn uniformly (the engines reduce it mod the block
// size); the XOR mask targets bits that change the value without
// producing traps: mantissa-range bits for doubles, low bits for the
// integer tree/order arrays.
util::StateCorruption make_corruption(StateFaultClass cls,
                                      std::uint64_t& rng) {
  using Block = util::StateCorruption::Block;
  util::StateCorruption c;
  c.index = util::splitmix64(rng);
  const std::uint64_t r = util::splitmix64(rng);
  switch (cls) {
    case StateFaultClass::kCostBitFlip:
      c.block = Block::kCost;
      c.bits = 1ULL << (16 + r % 36);  // mantissa bits: finite stays finite
      break;
    case StateFaultClass::kTreeBitFlip:
      c.block = Block::kTree;
      c.bits = 1ULL << (r % 8);
      break;
    case StateFaultClass::kOrderBitFlip:
      c.block = Block::kOrder;
      c.bits = 1ULL << (r % 8);
      break;
    case StateFaultClass::kDroppedDelta:
      c.block = Block::kWeight;
      c.bits = 1ULL << (16 + r % 36);
      break;
    case StateFaultClass::kEdgeCostBitFlip:
      c.block = Block::kEdgeCost;
      c.bits = 1ULL << (16 + r % 36);
      break;
    case StateFaultClass::kTruncatedBuffer:
      c.block = Block::kTruncate;
      c.bits = 1 + r % 3;  // drop 1–3 trailing entries
      break;
    case StateFaultClass::kStaleEpochRestore:
      c.block = Block::kEpoch;
      c.bits = 1 + r % 255;  // any nonzero stamp delta
      break;
  }
  return c;
}

}  // namespace

StateFaultInjector::StateFaultInjector(StateFaultPlan plan)
    : plan_(std::move(plan)) {}

void StateFaultInjector::attach(core::InstanceOptions& options) {
  options.pre_build_hook = [this](core::ChunkInstanceEngine& engine,
                                  int build) { inject(engine, build); };
}

void StateFaultInjector::inject(core::ChunkInstanceEngine& engine,
                                int build) {
  for (std::size_t f = 0; f < plan_.faults.size(); ++f) {
    const StateFault& fault = plan_.faults[f];
    if (fault.build != build) continue;
    // Per-fault stream: reproducible regardless of which faults the
    // engine's mode ends up accepting.
    std::uint64_t rng = plan_.seed ^ (0x9e3779b97f4a7c15ULL * (f + 1));
    const util::StateCorruption corruption =
        make_corruption(fault.cls, rng);
    if (engine.corrupt_for_testing(corruption)) {
      ++injected_;
    } else {
      ++skipped_;
    }
  }
}

}  // namespace faircache::sim
