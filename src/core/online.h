#pragma once

// Online fair caching — the extension the paper lists as future work
// (§VI): chunks arrive over time and may become outdated, so the cache
// needs replacement. Each arriving chunk is placed by one per-chunk ConFL
// solve against the *current* state (exactly the iterative structure of
// Algorithm 1); retired chunks free their slots; optionally, full nodes
// stay eligible at an eviction penalty and evict their oldest chunk when
// selected.
//
// Instance builds run through core::ChunkInstanceEngine, so consecutive
// inserts pay the O(n+|Δ|) delta sweep of kIncremental/kSparse (with
// GuardOptions integrity audits) instead of a dense O(n·m) rebuild per
// chunk; kRebuild remains the stateless reference mode and reproduces the
// historical per-insert placements bit-identically. Access-cost and fetch
// queries reuse the same engine state (ChunkInstanceEngine::sync) instead
// of materializing an n×n ContentionMatrix per call — the property that
// makes sim::ServingEngine's request hot path O(holders) per request.

#include <unordered_set>
#include <vector>

#include "core/approx.h"
#include "core/problem.h"
#include "util/status.h"

namespace faircache::core {

enum class ReplacementPolicy {
  kNone,         // full nodes are never selected (the paper's base model)
  kEvictOldest,  // full nodes may be selected; oldest chunk is evicted
};

struct OnlineConfig {
  ApproxConfig approx;
  ReplacementPolicy replacement = ReplacementPolicy::kNone;
  // Added to a full node's fairness cost when replacement is enabled: the
  // price of evicting its oldest chunk. The fairness term itself is
  // computed as if one slot were free.
  double eviction_penalty = 1.0;
};

struct OnlineStepResult {
  metrics::ChunkId chunk = 0;
  std::vector<graph::NodeId> cache_nodes;   // where the chunk landed
  std::vector<graph::NodeId> evicted_from;  // nodes that evicted for it
};

// Where one fetch would be served from under the current placement: the
// cheapest copy by path contention cost among the chunk's holders and the
// producer (ties break toward the smallest holder id, producer last).
struct FetchDecision {
  graph::NodeId source = graph::kInvalidNode;
  double cost = 0.0;          // c(source, requester); 0 for a local hit
  bool local = false;         // requester already holds the chunk
  bool from_producer = false;
};

class OnlineFairCaching {
 public:
  OnlineFairCaching(const FairCachingProblem& problem, OnlineConfig config);

  // Places a newly published chunk; returns where it went and what was
  // evicted. kInvalidInput for a negative id or an id that is currently
  // published (inserted before and not yet retired) — a duplicate insert
  // used to silently evict for a copy it could never place. retire_chunk
  // frees the id for re-publication (an updated version of the chunk).
  util::Result<OnlineStepResult> try_insert_chunk(metrics::ChunkId chunk);

  // Throwing wrapper around try_insert_chunk for trusted callers.
  OnlineStepResult insert_chunk(metrics::ChunkId chunk);

  // Drops an outdated chunk from every cache and frees its id.
  void retire_chunk(metrics::ChunkId chunk);

  // Replaces the whole placement — the periodic re-optimization tick of
  // sim::ServingEngine hands the anytime ApproxFairCaching::solve result
  // here. The state must match this problem (size, producer, per-node
  // capacities) and pass verify_integrity; kInvalidInput otherwise.
  // Insertion ages are restamped deterministically (nodes ascending,
  // chunks ascending) and every held chunk id becomes published.
  util::Status adopt_placement(const metrics::CacheState& state);

  const metrics::CacheState& state() const { return state_; }
  long total_evictions() const { return total_evictions_; }

  // Access contention cost of fetching `chunk` from the current caches
  // (every live node fetches once, producer fallback included). Served
  // from engine state — no per-call matrix build.
  double access_cost(metrics::ChunkId chunk);

  // Cheapest source for one request under the current placement —
  // O(holders · log row) per call, the serving hot path.
  FetchDecision fetch(graph::NodeId requester, metrics::ChunkId chunk);

  // Structural self-check: state_.verify_integrity() plus the ages_ ↔
  // state bijection (every cached (node, chunk) pair has exactly one age
  // entry, every age entry a cached pair, stamps within [0, clock)).
  // kInvalidInput naming the first violation. Every mutation through
  // insert/retire/adopt preserves this.
  util::Status verify_consistency() const;

  // The contention engine the inserts actually run (kAuto resolved,
  // kRebuild fallback applied) and its integrity-guard activity.
  ContentionMode contention_mode_used() const { return engine_.mode_used(); }
  const CorruptionReport& guard_report() const {
    return engine_.guard_report();
  }

 private:
  // Engine state lags placement mutations; queries sync lazily.
  util::Status sync_queries();

  FairCachingProblem problem_;
  OnlineConfig config_;
  metrics::CacheState state_;
  ChunkInstanceEngine engine_;
  // Insertion age per (node, chunk) for oldest-first eviction.
  std::vector<std::vector<std::pair<long, metrics::ChunkId>>> ages_;
  std::unordered_set<metrics::ChunkId> published_;
  bool queries_dirty_ = true;
  long clock_ = 0;
  long total_evictions_ = 0;
};

}  // namespace faircache::core
