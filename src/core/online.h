#pragma once

// Online fair caching — the extension the paper lists as future work
// (§VI): chunks arrive over time and may become outdated, so the cache
// needs replacement. Each arriving chunk is placed by one per-chunk ConFL
// solve against the *current* state (exactly the iterative structure of
// Algorithm 1); retired chunks free their slots; optionally, full nodes
// stay eligible at an eviction penalty and evict their oldest chunk when
// selected.

#include <optional>

#include "core/approx.h"
#include "core/problem.h"

namespace faircache::core {

enum class ReplacementPolicy {
  kNone,         // full nodes are never selected (the paper's base model)
  kEvictOldest,  // full nodes may be selected; oldest chunk is evicted
};

struct OnlineConfig {
  ApproxConfig approx;
  ReplacementPolicy replacement = ReplacementPolicy::kNone;
  // Added to a full node's fairness cost when replacement is enabled: the
  // price of evicting its oldest chunk. The fairness term itself is
  // computed as if one slot were free.
  double eviction_penalty = 1.0;
};

struct OnlineStepResult {
  metrics::ChunkId chunk = 0;
  std::vector<graph::NodeId> cache_nodes;   // where the chunk landed
  std::vector<graph::NodeId> evicted_from;  // nodes that evicted for it
};

class OnlineFairCaching {
 public:
  OnlineFairCaching(const FairCachingProblem& problem, OnlineConfig config);

  // Places a newly published chunk; returns where it went and what was
  // evicted. Chunk ids must be fresh (never inserted before).
  OnlineStepResult insert_chunk(metrics::ChunkId chunk);

  // Drops an outdated chunk from every cache.
  void retire_chunk(metrics::ChunkId chunk);

  const metrics::CacheState& state() const { return state_; }
  long total_evictions() const { return total_evictions_; }

  // Access contention cost of fetching `chunk` from the current caches
  // (every live node fetches once, producer fallback included).
  double access_cost(metrics::ChunkId chunk) const;

 private:
  FairCachingProblem problem_;
  OnlineConfig config_;
  metrics::CacheState state_;
  // Insertion age per (node, chunk) for oldest-first eviction.
  std::vector<std::vector<std::pair<long, metrics::ChunkId>>> ages_;
  long clock_ = 0;
  long total_evictions_ = 0;
};

}  // namespace faircache::core
