#pragma once

// Non-throwing validation of a FairCachingProblem against the documented
// domain — the hardened input boundary for untrusted problem descriptions
// (file loaders, fuzz decoders, RPC fronts). The solver entry points call
// this before touching the instance, so malformed input surfaces as a
// typed util::Status instead of a CheckError deep inside the stack.

#include "core/problem.h"
#include "util/status.h"

namespace faircache::core {

// kInvalidInput: missing network, producer out of range, negative chunk
// count, capacity vector size mismatch, negative capacity, or a chunk ×
// node product that overflows the evaluator's pair counting.
// kInfeasible: a disconnected network (no dissemination tree can reach
// every consumer, so no placement is feasible under the paper's model).
util::Status validate_problem(const FairCachingProblem& problem);

// Placement-level validation — the invariant every repair step must
// preserve (docs/CHURN.md): per-node capacity respected, the producer
// caches nothing, every cached chunk id lies in [0, num_chunks), and, when
// a liveness mask is supplied, no dead node holds a copy
// (holder-aliveness). kInvalidInput names the first violated rule.
util::Status validate_placement(const metrics::CacheState& state,
                                int num_chunks,
                                const std::vector<char>* alive = nullptr);

}  // namespace faircache::core
