#pragma once

// The paper's Algorithm 1 ("Appx"): for each chunk, rebuild fairness and
// contention costs from the current cache state, solve the resulting ConFL
// instance with the primal–dual approximation, cache the chunk on the ADMIN
// set, and move to the next chunk. Theorem 1 shows this iterated scheme
// preserves the 6.55 approximation ratio of the underlying ConFL algorithm
// against the per-chunk optimal transform (8).
//
// The budget-aware entry point `solve` adds *anytime* semantics on top
// (docs/ROBUSTNESS.md): when the util::RunBudget expires mid-run, chunks
// already placed keep their ConFL solutions and every remaining chunk is
// placed by a cheap greedy hop-count fallback, so the caller always gets a
// feasible placement — never a throw, never an empty result.

#include "confl/confl.h"
#include "core/instance_builder.h"
#include "core/problem.h"
#include "core/validate.h"
#include "util/deadline.h"
#include "util/status.h"

namespace faircache::core {

struct ApproxConfig {
  // Per-chunk ConFL solver knobs. `confl.steiner_engine` selects the
  // Phase 2 tree construction: the default kVoronoi builds the
  // 2-approximate tree from one multi-source sweep (the fast choice at
  // any size); kClosureKmb is the historical per-terminal-SSSP engine,
  // bit-identical to the pre-PR-5 golden outputs.
  confl::ConflOptions confl;
  // `instance.contention_mode` selects the per-chunk cost engine: the
  // default kIncremental delta-patches pinned BFS trees between chunks;
  // kRebuild reconstructs the contention matrix every chunk (reference).
  InstanceOptions instance;
};

// Diagnostics of one anytime `solve` run: which chunks were degraded to
// the greedy fallback, where the time went, and why the run stopped early
// (stop_reason is OK for a run that completed under budget).
struct SolveReport {
  util::Status stop_reason;  // OK, kDeadlineExceeded, kCancelled, ...
  int chunks_total = 0;
  // The contention engine the chunk loop actually ran
  // (ChunkInstanceEngine::mode_used()): the configured
  // `instance.contention_mode` with kAuto resolved and the
  // hop-shortest-only engines' kRebuild fallback applied — so callers can
  // tell when e.g. kMinContention silently demoted kIncremental/kSparse
  // to a per-chunk rebuild. Never kAuto.
  ContentionMode contention_mode_used = ContentionMode::kRebuild;
  // Chunks placed by the greedy fallback instead of the ConFL solver,
  // ascending. Empty for a completed run.
  std::vector<metrics::ChunkId> degraded_chunks;
  double build_seconds = 0.0;     // per-chunk instance builds (lines 5–16)
  // Split of the contention-cost share of build_seconds: full builds
  // (pinning the BFS trees on chunk 0, and every kRebuild chunk) vs the
  // sparse delta sweeps of kIncremental chunks after the first. Their sum
  // is ≤ build_seconds (the remainder is fairness costs and plumbing).
  double build_tree_seconds = 0.0;
  double build_delta_seconds = 0.0;
  double solve_seconds = 0.0;     // ConFL solves (lines 17–47)
  double fallback_seconds = 0.0;  // greedy degraded-mode placement
  double total_seconds = 0.0;
  // Integrity-guard activity across the chunk loop: audits run/skipped,
  // detected corruptions, quarantine-to-rebuild recoveries
  // (core/engine_guard.h; docs/ROBUSTNESS.md, "Integrity guard").
  // guard.clean() for any healthy run.
  CorruptionReport guard;

  bool degraded() const { return !degraded_chunks.empty(); }
  int chunks_solved() const {
    return chunks_total - static_cast<int>(degraded_chunks.size());
  }
};

class ApproxFairCaching : public CachingAlgorithm {
 public:
  explicit ApproxFairCaching(ApproxConfig config = {})
      : config_(std::move(config)) {}

  std::string name() const override { return "Appx"; }

  FairCachingResult run(const FairCachingProblem& problem) override;

  // Budget-aware anytime variant of run().
  //
  //  * Malformed problems come back as kInvalidInput, a disconnected
  //    network as kInfeasible (core::validate_problem) — the only error
  //    returns.
  //  * Budget expiry (deadline, cancellation, work-unit cap) is NOT an
  //    error: the result is still OK and feasible. Chunks solved before
  //    expiry keep their ConFL placements; the rest fall back to the
  //    greedy hop-count set, and `report` (optional) records the degraded
  //    chunks, per-phase elapsed times, and the typed stop reason.
  //  * Under an unlimited budget the result is bit-identical to run() at
  //    any thread count (budget checks never touch solver arithmetic).
  util::Result<FairCachingResult> solve(const FairCachingProblem& problem,
                                        const util::RunBudget& budget = {},
                                        SolveReport* report = nullptr);

  const ApproxConfig& config() const { return config_; }

 private:
  ApproxConfig config_;
};

}  // namespace faircache::core
