#pragma once

// The paper's Algorithm 1 ("Appx"): for each chunk, rebuild fairness and
// contention costs from the current cache state, solve the resulting ConFL
// instance with the primal–dual approximation, cache the chunk on the ADMIN
// set, and move to the next chunk. Theorem 1 shows this iterated scheme
// preserves the 6.55 approximation ratio of the underlying ConFL algorithm
// against the per-chunk optimal transform (8).

#include "confl/confl.h"
#include "core/instance_builder.h"
#include "core/problem.h"

namespace faircache::core {

struct ApproxConfig {
  confl::ConflOptions confl;
  InstanceOptions instance;
};

class ApproxFairCaching : public CachingAlgorithm {
 public:
  explicit ApproxFairCaching(ApproxConfig config = {})
      : config_(std::move(config)) {}

  std::string name() const override { return "Appx"; }

  FairCachingResult run(const FairCachingProblem& problem) override;

  const ApproxConfig& config() const { return config_; }

 private:
  ApproxConfig config_;
};

}  // namespace faircache::core
