#include "core/instance_builder.h"

namespace faircache::core {

confl::ConflInstance build_chunk_instance(const FairCachingProblem& problem,
                                          const metrics::CacheState& state,
                                          const InstanceOptions& options,
                                          metrics::ChunkId chunk) {
  FAIRCACHE_CHECK(problem.network != nullptr, "problem needs a network");
  FAIRCACHE_CHECK(state.num_nodes() == problem.network->num_nodes(),
                  "state / network size mismatch");

  confl::ConflInstance instance;
  instance.network = problem.network;
  instance.root = problem.producer;
  instance.edge_scale = options.edge_scale;
  instance.facility_cost = options.fairness.costs(state);

  metrics::ContentionMatrix contention(*problem.network, state,
                                       options.path_policy, options.threads);
  instance.assign_cost = contention.take_matrix();
  instance.edge_cost = contention.take_edge_costs();
  if (options.demand != nullptr) {
    FAIRCACHE_CHECK(chunk >= 0 &&
                        static_cast<std::size_t>(chunk) <
                            options.demand->size(),
                    "demand matrix missing chunk row");
    instance.client_weight =
        (*options.demand)[static_cast<std::size_t>(chunk)];
  }
  return instance;
}

}  // namespace faircache::core
