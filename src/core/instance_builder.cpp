#include "core/instance_builder.h"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/stopwatch.h"

namespace faircache::core {

namespace {

util::Status validate_build_inputs(const FairCachingProblem& problem,
                                   const metrics::CacheState& state,
                                   const InstanceOptions& options,
                                   metrics::ChunkId chunk) {
  if (problem.network == nullptr) {
    return util::Status::invalid_input("problem needs a network");
  }
  if (state.num_nodes() != problem.network->num_nodes()) {
    return util::Status::invalid_input("state / network size mismatch");
  }
  if (options.demand != nullptr &&
      (chunk < 0 ||
       static_cast<std::size_t>(chunk) >= options.demand->size())) {
    return util::Status::invalid_input("demand matrix missing chunk row");
  }
  if (options.contention_mode == ContentionMode::kSparse) {
    if (util::Status status =
            validate_sparse_node_limit(problem.network->num_nodes());
        !status.ok()) {
      return status;
    }
  }
  return util::Status();  // OK
}

// Everything of the instance except the contention buffers.
confl::ConflInstance instance_shell(const FairCachingProblem& problem,
                                    const metrics::CacheState& state,
                                    const InstanceOptions& options,
                                    metrics::ChunkId chunk) {
  confl::ConflInstance instance;
  instance.network = problem.network;
  instance.root = problem.producer;
  instance.edge_scale = options.edge_scale;
  instance.facility_cost = options.fairness.costs(state);
  if (options.demand != nullptr) {
    instance.client_weight =
        (*options.demand)[static_cast<std::size_t>(chunk)];
  }
  return instance;
}

}  // namespace

confl::ConflInstance build_chunk_instance(const FairCachingProblem& problem,
                                          const metrics::CacheState& state,
                                          const InstanceOptions& options,
                                          metrics::ChunkId chunk) {
  util::Result<confl::ConflInstance> result =
      try_build_chunk_instance(problem, state, options, chunk);
  if (!result.ok()) {
    util::check_failed("try_build_chunk_instance(...).ok()", __FILE__,
                       __LINE__, result.status().message());
  }
  return std::move(result).value();
}

util::Result<confl::ConflInstance> try_build_chunk_instance(
    const FairCachingProblem& problem, const metrics::CacheState& state,
    const InstanceOptions& options, metrics::ChunkId chunk) {
  if (util::Status status =
          validate_build_inputs(problem, state, options, chunk);
      !status.ok()) {
    return status;
  }
  confl::ConflInstance instance =
      instance_shell(problem, state, options, chunk);
  metrics::ContentionMatrix contention(*problem.network, state,
                                       options.path_policy, options.threads);
  instance.assign_cost = contention.take_matrix();
  instance.edge_cost = contention.take_edge_costs();
  return instance;
}

util::Status validate_sparse_node_limit(int num_nodes) {
  if (num_nodes >= metrics::SparseContention::kMaxNodes) {
    return util::Status::invalid_input(
        "sparse contention store packs columns into 24 bits; "
        "network must have fewer than 2^24 nodes");
  }
  return util::Status();  // OK
}

ContentionMode choose_contention_mode(const graph::Graph& g, int radius) {
  const int n = g.num_nodes();
  // Dense incremental is unbeatable while the n×n matrix is small, and is
  // the only choice when nothing bounds the rows.
  if (n <= 2048 || radius <= 0) return ContentionMode::kIncremental;
  // Past the dense memory wall the sparse engine is the only one that
  // scales, whatever the fill.
  if (n > 16384) return ContentionMode::kSparse;
  // In between, estimate the mean row fill from truncated BFS balls around
  // ≤ 32 evenly spaced sources.
  const graph::CsrAdjacency adj = graph::build_csr(g);
  const int samples = std::min(n, 32);
  const int stride = std::max(1, n / samples);
  std::vector<int> stamp(static_cast<std::size_t>(n), 0);
  std::vector<int> depth(static_cast<std::size_t>(n));
  std::vector<graph::NodeId> queue;
  queue.reserve(static_cast<std::size_t>(n));
  int gen = 0;
  std::int64_t ball_total = 0;
  int taken = 0;
  for (graph::NodeId src = 0; src < n && taken < samples;
       src += stride, ++taken) {
    ++gen;
    queue.clear();
    stamp[static_cast<std::size_t>(src)] = gen;
    depth[static_cast<std::size_t>(src)] = 0;
    queue.push_back(src);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const graph::NodeId v = queue[head];
      const int dv = depth[static_cast<std::size_t>(v)];
      if (dv >= radius) continue;
      for (int e = adj.offset[v]; e < adj.offset[v + 1]; ++e) {
        const auto w = static_cast<std::size_t>(adj.neighbor[e]);
        if (stamp[w] == gen) continue;
        stamp[w] = gen;
        depth[w] = dv + 1;
        queue.push_back(adj.neighbor[e]);
      }
    }
    ball_total += static_cast<std::int64_t>(queue.size());
  }
  const double fill = taken == 0 ? 1.0
                                 : static_cast<double>(ball_total) /
                                       (static_cast<double>(taken) * n);
  return fill <= 0.25 ? ContentionMode::kSparse
                      : ContentionMode::kIncremental;
}

ChunkInstanceEngine::ChunkInstanceEngine(const FairCachingProblem& problem,
                                         const InstanceOptions& options)
    : problem_(&problem), options_(options) {
  mode_used_ = options_.contention_mode;
  if (mode_used_ == ContentionMode::kAuto) {
    mode_used_ = problem_->network != nullptr
                     ? choose_contention_mode(*problem_->network,
                                              options_.contention_radius)
                     : ContentionMode::kRebuild;
  }
  // The delta-patching engines pin hop-shortest BFS trees; kMinContention
  // paths depend on the weights themselves, so both fall back to the
  // stateless rebuild (surfaced through mode_used()).
  if (options_.path_policy != metrics::PathPolicy::kHopShortest ||
      problem_->network == nullptr) {
    mode_used_ = ContentionMode::kRebuild;
  }
  guard_ = EngineGuard(options_.guard);
  if (mode_used_ == ContentionMode::kIncremental) {
    updater_ = std::make_unique<metrics::ContentionUpdater>(
        *problem_->network, options_.threads, options_.guard.enabled);
  } else if (mode_used_ == ContentionMode::kSparse) {
    // kAuto can resolve to kSparse past the dense memory wall, so the
    // 24-bit column limit is re-checked on the *resolved* mode and
    // surfaced as a typed error from build(), never a CHECK abort.
    init_status_ = validate_sparse_node_limit(problem_->network->num_nodes());
    if (!init_status_.ok()) return;
    metrics::SparseContentionOptions sparse_options;
    sparse_options.radius = options_.contention_radius;
    sparse_options.full_row = problem_->producer;
    sparse_options.threads = options_.threads;
    sparse_options.checksums = options_.guard.enabled;
    sparse_updater_ = std::make_unique<metrics::SparseContentionUpdater>(
        *problem_->network, sparse_options);
  }
}

util::Result<confl::ConflInstance> ChunkInstanceEngine::build(
    const metrics::CacheState& state, metrics::ChunkId chunk) {
  const int build_index = ++builds_;
  if (options_.pre_build_hook) options_.pre_build_hook(*this, build_index);
  if (!init_status_.ok()) return init_status_;
  if (util::Status status =
          validate_build_inputs(*problem_, state, options_, chunk);
      !status.ok()) {
    return status;
  }
  confl::ConflInstance instance =
      instance_shell(*problem_, state, options_, chunk);
  // Audit BEFORE update(): a corrupted pinned tree must be caught before
  // it can drive (or overrun) the delta sweep it indexes.
  guard_tick(build_index);
  if (updater_ != nullptr) {
    const double tree_before = updater_->tree_build_seconds();
    const double delta_before = updater_->delta_apply_seconds();
    updater_->update(state);
    const double spent = updater_->tree_build_seconds() - tree_before +
                         updater_->delta_apply_seconds() - delta_before;
    stats_.tree_seconds += updater_->tree_build_seconds() - tree_before;
    stats_.delta_seconds += updater_->delta_apply_seconds() - delta_before;
    if (recovering_) {
      guard_.add_recovery_seconds(spent);
      recovering_ = false;
    }
    instance.assign_cost = updater_->take_matrix();
    instance.edge_cost = updater_->take_edge_costs();
  } else if (sparse_updater_ != nullptr) {
    const double tree_before = sparse_updater_->tree_build_seconds();
    const double delta_before = sparse_updater_->delta_apply_seconds();
    sparse_updater_->update(state);
    const double spent =
        sparse_updater_->tree_build_seconds() - tree_before +
        sparse_updater_->delta_apply_seconds() - delta_before;
    stats_.tree_seconds +=
        sparse_updater_->tree_build_seconds() - tree_before;
    stats_.delta_seconds +=
        sparse_updater_->delta_apply_seconds() - delta_before;
    if (recovering_) {
      guard_.add_recovery_seconds(spent);
      recovering_ = false;
    }
    instance.sparse_cost = sparse_updater_->take_store();
    instance.edge_cost = sparse_updater_->take_edge_costs();
  } else {
    util::Stopwatch timer;
    metrics::ContentionMatrix contention(*problem_->network, state,
                                         options_.path_policy,
                                         options_.threads);
    instance.assign_cost = contention.take_matrix();
    instance.edge_cost = contention.take_edge_costs();
    stats_.tree_seconds += timer.elapsed_seconds();
  }
  return instance;
}

void ChunkInstanceEngine::reclaim(confl::ConflInstance&& instance) {
  if (updater_ != nullptr) {
    updater_->restore(std::move(instance.assign_cost),
                      std::move(instance.edge_cost));
  } else if (sparse_updater_ != nullptr) {
    sparse_updater_->restore(std::move(instance.sparse_cost),
                             std::move(instance.edge_cost));
    guard_.set_stale_restores(stale_restore_base_ +
                              sparse_updater_->stale_restores());
  }
}

util::Status ChunkInstanceEngine::sync(const metrics::CacheState& state) {
  if (!init_status_.ok()) return init_status_;
  if (problem_->network == nullptr) {
    return util::Status::invalid_input("problem needs a network");
  }
  if (state.num_nodes() != problem_->network->num_nodes()) {
    return util::Status::invalid_input("state / network size mismatch");
  }
  if (updater_ != nullptr) {
    const double tree_before = updater_->tree_build_seconds();
    const double delta_before = updater_->delta_apply_seconds();
    updater_->update(state);
    stats_.tree_seconds += updater_->tree_build_seconds() - tree_before;
    stats_.delta_seconds += updater_->delta_apply_seconds() - delta_before;
  } else if (sparse_updater_ != nullptr) {
    const double tree_before = sparse_updater_->tree_build_seconds();
    const double delta_before = sparse_updater_->delta_apply_seconds();
    sparse_updater_->update(state);
    stats_.tree_seconds +=
        sparse_updater_->tree_build_seconds() - tree_before;
    stats_.delta_seconds +=
        sparse_updater_->delta_apply_seconds() - delta_before;
  } else {
    std::vector<int> counts = state.stored_counts();
    if (query_matrix_ == nullptr || counts != query_counts_) {
      util::Stopwatch timer;
      query_matrix_ = std::make_unique<metrics::ContentionMatrix>(
          *problem_->network, state, options_.path_policy, options_.threads);
      query_counts_ = std::move(counts);
      stats_.tree_seconds += timer.elapsed_seconds();
    }
  }
  return util::Status();  // OK
}

bool ChunkInstanceEngine::query_ready() const {
  if (updater_ != nullptr) return updater_->ready();
  if (sparse_updater_ != nullptr) return sparse_updater_->ready();
  return query_matrix_ != nullptr;
}

double ChunkInstanceEngine::query_cost(graph::NodeId i,
                                       graph::NodeId j) const {
  FAIRCACHE_DCHECK(query_ready());
  if (updater_ != nullptr) return updater_->cost(i, j);
  if (sparse_updater_ != nullptr) return sparse_updater_->store().cost_at(i, j);
  return query_matrix_->cost(i, j);
}

void ChunkInstanceEngine::guard_tick(int build_index) {
  if (!options_.guard.enabled) return;
  const double build_seconds = stats_.tree_seconds + stats_.delta_seconds;
  if (updater_ != nullptr && updater_->ready()) {
    if (!guard_.audit_due(build_index, build_seconds)) return;
    if (guard_.audit(*updater_, build_index)) return;
    guard_.note_quarantine(build_index);
    recovering_ = true;
    updater_ = std::make_unique<metrics::ContentionUpdater>(
        *problem_->network, options_.threads, /*checksums=*/true);
  } else if (sparse_updater_ != nullptr && sparse_updater_->ready()) {
    if (!guard_.audit_due(build_index, build_seconds)) return;
    if (guard_.audit(*sparse_updater_, build_index)) return;
    guard_.note_quarantine(build_index);
    recovering_ = true;
    stale_restore_base_ += sparse_updater_->stale_restores();
    metrics::SparseContentionOptions sparse_options;
    sparse_options.radius = options_.contention_radius;
    sparse_options.full_row = problem_->producer;
    sparse_options.threads = options_.threads;
    sparse_options.checksums = true;
    sparse_updater_ = std::make_unique<metrics::SparseContentionUpdater>(
        *problem_->network, sparse_options);
  }
}

bool ChunkInstanceEngine::corrupt_for_testing(
    const util::StateCorruption& corruption) {
  if (updater_ != nullptr) return updater_->corrupt_for_testing(corruption);
  if (sparse_updater_ != nullptr) {
    return sparse_updater_->corrupt_for_testing(corruption);
  }
  return false;
}

}  // namespace faircache::core
