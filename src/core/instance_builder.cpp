#include "core/instance_builder.h"

namespace faircache::core {

confl::ConflInstance build_chunk_instance(const FairCachingProblem& problem,
                                          const metrics::CacheState& state,
                                          const InstanceOptions& options,
                                          metrics::ChunkId chunk) {
  util::Result<confl::ConflInstance> result =
      try_build_chunk_instance(problem, state, options, chunk);
  if (!result.ok()) {
    util::check_failed("try_build_chunk_instance(...).ok()", __FILE__,
                       __LINE__, result.status().message());
  }
  return std::move(result).value();
}

util::Result<confl::ConflInstance> try_build_chunk_instance(
    const FairCachingProblem& problem, const metrics::CacheState& state,
    const InstanceOptions& options, metrics::ChunkId chunk) {
  if (problem.network == nullptr) {
    return util::Status::invalid_input("problem needs a network");
  }
  if (state.num_nodes() != problem.network->num_nodes()) {
    return util::Status::invalid_input("state / network size mismatch");
  }
  if (options.demand != nullptr &&
      (chunk < 0 ||
       static_cast<std::size_t>(chunk) >= options.demand->size())) {
    return util::Status::invalid_input("demand matrix missing chunk row");
  }

  confl::ConflInstance instance;
  instance.network = problem.network;
  instance.root = problem.producer;
  instance.edge_scale = options.edge_scale;
  instance.facility_cost = options.fairness.costs(state);

  metrics::ContentionMatrix contention(*problem.network, state,
                                       options.path_policy, options.threads);
  instance.assign_cost = contention.take_matrix();
  instance.edge_cost = contention.take_edge_costs();
  if (options.demand != nullptr) {
    instance.client_weight =
        (*options.demand)[static_cast<std::size_t>(chunk)];
  }
  return instance;
}

}  // namespace faircache::core
