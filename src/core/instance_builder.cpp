#include "core/instance_builder.h"

#include <utility>

#include "util/stopwatch.h"

namespace faircache::core {

namespace {

util::Status validate_build_inputs(const FairCachingProblem& problem,
                                   const metrics::CacheState& state,
                                   const InstanceOptions& options,
                                   metrics::ChunkId chunk) {
  if (problem.network == nullptr) {
    return util::Status::invalid_input("problem needs a network");
  }
  if (state.num_nodes() != problem.network->num_nodes()) {
    return util::Status::invalid_input("state / network size mismatch");
  }
  if (options.demand != nullptr &&
      (chunk < 0 ||
       static_cast<std::size_t>(chunk) >= options.demand->size())) {
    return util::Status::invalid_input("demand matrix missing chunk row");
  }
  return util::Status();  // OK
}

// Everything of the instance except the contention buffers.
confl::ConflInstance instance_shell(const FairCachingProblem& problem,
                                    const metrics::CacheState& state,
                                    const InstanceOptions& options,
                                    metrics::ChunkId chunk) {
  confl::ConflInstance instance;
  instance.network = problem.network;
  instance.root = problem.producer;
  instance.edge_scale = options.edge_scale;
  instance.facility_cost = options.fairness.costs(state);
  if (options.demand != nullptr) {
    instance.client_weight =
        (*options.demand)[static_cast<std::size_t>(chunk)];
  }
  return instance;
}

}  // namespace

confl::ConflInstance build_chunk_instance(const FairCachingProblem& problem,
                                          const metrics::CacheState& state,
                                          const InstanceOptions& options,
                                          metrics::ChunkId chunk) {
  util::Result<confl::ConflInstance> result =
      try_build_chunk_instance(problem, state, options, chunk);
  if (!result.ok()) {
    util::check_failed("try_build_chunk_instance(...).ok()", __FILE__,
                       __LINE__, result.status().message());
  }
  return std::move(result).value();
}

util::Result<confl::ConflInstance> try_build_chunk_instance(
    const FairCachingProblem& problem, const metrics::CacheState& state,
    const InstanceOptions& options, metrics::ChunkId chunk) {
  if (util::Status status =
          validate_build_inputs(problem, state, options, chunk);
      !status.ok()) {
    return status;
  }
  confl::ConflInstance instance =
      instance_shell(problem, state, options, chunk);
  metrics::ContentionMatrix contention(*problem.network, state,
                                       options.path_policy, options.threads);
  instance.assign_cost = contention.take_matrix();
  instance.edge_cost = contention.take_edge_costs();
  return instance;
}

ChunkInstanceEngine::ChunkInstanceEngine(const FairCachingProblem& problem,
                                         const InstanceOptions& options)
    : problem_(&problem), options_(options) {
  if (options_.contention_mode == ContentionMode::kIncremental &&
      options_.path_policy == metrics::PathPolicy::kHopShortest &&
      problem_->network != nullptr) {
    updater_ = std::make_unique<metrics::ContentionUpdater>(
        *problem_->network, options_.threads);
  }
}

util::Result<confl::ConflInstance> ChunkInstanceEngine::build(
    const metrics::CacheState& state, metrics::ChunkId chunk) {
  if (util::Status status =
          validate_build_inputs(*problem_, state, options_, chunk);
      !status.ok()) {
    return status;
  }
  confl::ConflInstance instance =
      instance_shell(*problem_, state, options_, chunk);
  if (updater_ != nullptr) {
    const double tree_before = updater_->tree_build_seconds();
    const double delta_before = updater_->delta_apply_seconds();
    updater_->update(state);
    stats_.tree_seconds += updater_->tree_build_seconds() - tree_before;
    stats_.delta_seconds += updater_->delta_apply_seconds() - delta_before;
    instance.assign_cost = updater_->take_matrix();
    instance.edge_cost = updater_->take_edge_costs();
  } else {
    util::Stopwatch timer;
    metrics::ContentionMatrix contention(*problem_->network, state,
                                         options_.path_policy,
                                         options_.threads);
    instance.assign_cost = contention.take_matrix();
    instance.edge_cost = contention.take_edge_costs();
    stats_.tree_seconds += timer.elapsed_seconds();
  }
  return instance;
}

void ChunkInstanceEngine::reclaim(confl::ConflInstance&& instance) {
  if (updater_ == nullptr) return;
  updater_->restore(std::move(instance.assign_cost),
                    std::move(instance.edge_cost));
}

}  // namespace faircache::core
