#include "core/online.h"

#include <algorithm>
#include <utility>

#include "confl/confl.h"
#include "graph/shortest_paths.h"

namespace faircache::core {

using graph::NodeId;

OnlineFairCaching::OnlineFairCaching(const FairCachingProblem& problem,
                                     OnlineConfig config)
    : problem_(problem),
      config_(std::move(config)),
      state_(problem.make_initial_state()),
      engine_(problem_, config_.approx.instance),
      ages_(static_cast<std::size_t>(state_.num_nodes())) {
  FAIRCACHE_CHECK(problem_.network != nullptr, "problem needs a network");
}

util::Result<OnlineStepResult> OnlineFairCaching::try_insert_chunk(
    metrics::ChunkId chunk) {
  if (chunk < 0) {
    return util::Status::invalid_input("negative chunk id");
  }
  if (published_.count(chunk) != 0) {
    return util::Status::invalid_input(
        "chunk id is already published; retire it before re-inserting");
  }

  util::Result<confl::ConflInstance> built = engine_.build(state_, chunk);
  if (!built.ok()) return built.status();
  confl::ConflInstance instance = std::move(built).value();

  // Replacement: full nodes become eligible at a penalty, priced as if one
  // slot were already free.
  if (config_.replacement == ReplacementPolicy::kEvictOldest) {
    for (NodeId v = 0; v < state_.num_nodes(); ++v) {
      if (v == state_.producer() || !state_.full(v) ||
          state_.capacity(v) == 0 || state_.holds(v, chunk)) {
        continue;
      }
      const double used = static_cast<double>(state_.used(v) - 1);
      const double cap = static_cast<double>(state_.capacity(v));
      instance.facility_cost[static_cast<std::size_t>(v)] =
          config_.eviction_penalty + used / (cap - used);
    }
  }

  const confl::ConflSolution solution =
      confl::solve_confl(instance, config_.approx.confl);
  engine_.reclaim(std::move(instance));

  OnlineStepResult step;
  step.chunk = chunk;
  for (NodeId v : solution.open_facilities) {
    auto& age_list = ages_[static_cast<std::size_t>(v)];
    if (state_.full(v)) {
      if (config_.replacement != ReplacementPolicy::kEvictOldest ||
          state_.capacity(v) == 0) {
        continue;  // defensive: solver should not have opened this node
      }
      // Evict the oldest chunk on v.
      const auto oldest = std::min_element(age_list.begin(), age_list.end());
      FAIRCACHE_DCHECK(oldest != age_list.end());
      state_.remove(v, oldest->second);
      age_list.erase(oldest);
      ++total_evictions_;
      queries_dirty_ = true;
      step.evicted_from.push_back(v);
    }
    if (state_.can_cache(v, chunk)) {
      state_.add(v, chunk);
      age_list.emplace_back(clock_++, chunk);
      queries_dirty_ = true;
      step.cache_nodes.push_back(v);
    }
  }
  published_.insert(chunk);
  return step;
}

OnlineStepResult OnlineFairCaching::insert_chunk(metrics::ChunkId chunk) {
  util::Result<OnlineStepResult> step = try_insert_chunk(chunk);
  if (!step.ok()) {
    util::check_failed("try_insert_chunk(...).ok()", __FILE__, __LINE__,
                       step.status().message());
  }
  return std::move(step).value();
}

void OnlineFairCaching::retire_chunk(metrics::ChunkId chunk) {
  for (NodeId v = 0; v < state_.num_nodes(); ++v) {
    if (v == state_.producer() || !state_.holds(v, chunk)) continue;
    state_.remove(v, chunk);
    queries_dirty_ = true;
    auto& age_list = ages_[static_cast<std::size_t>(v)];
    age_list.erase(std::remove_if(age_list.begin(), age_list.end(),
                                  [&](const auto& entry) {
                                    return entry.second == chunk;
                                  }),
                   age_list.end());
  }
  published_.erase(chunk);
}

util::Status OnlineFairCaching::adopt_placement(
    const metrics::CacheState& state) {
  if (state.num_nodes() != state_.num_nodes()) {
    return util::Status::invalid_input("adopted state size mismatch");
  }
  if (state.producer() != state_.producer()) {
    return util::Status::invalid_input("adopted state producer mismatch");
  }
  for (NodeId v = 0; v < state_.num_nodes(); ++v) {
    if (state.capacity(v) != state_.capacity(v)) {
      return util::Status::invalid_input("adopted state capacity mismatch");
    }
  }
  if (util::Status status = state.verify_integrity(); !status.ok()) {
    return status;
  }
  state_ = state;
  queries_dirty_ = true;
  for (NodeId v = 0; v < state_.num_nodes(); ++v) {
    auto& age_list = ages_[static_cast<std::size_t>(v)];
    age_list.clear();
    for (metrics::ChunkId chunk : state_.chunks_on(v)) {
      age_list.emplace_back(clock_++, chunk);
      published_.insert(chunk);
    }
  }
  return util::Status();  // OK
}

util::Status OnlineFairCaching::sync_queries() {
  if (!queries_dirty_ && engine_.query_ready()) return util::Status();
  util::Status status = engine_.sync(state_);
  if (status.ok()) queries_dirty_ = false;
  return status;
}

double OnlineFairCaching::access_cost(metrics::ChunkId chunk) {
  FAIRCACHE_CHECK(sync_queries().ok(), "engine sync failed");
  std::vector<NodeId> sources = state_.holders(chunk);
  sources.push_back(state_.producer());

  double total = 0.0;
  for (NodeId j = 0; j < state_.num_nodes(); ++j) {
    if (j == state_.producer()) continue;
    double best = graph::kInfCost;
    for (NodeId i : sources) best = std::min(best, engine_.query_cost(i, j));
    total += best;
  }
  return total;
}

FetchDecision OnlineFairCaching::fetch(NodeId requester,
                                       metrics::ChunkId chunk) {
  FetchDecision decision;
  if (requester == state_.producer() || state_.holds(requester, chunk)) {
    decision.source = requester;
    decision.cost = 0.0;
    decision.local = true;
    decision.from_producer = requester == state_.producer();
    return decision;
  }
  FAIRCACHE_CHECK(sync_queries().ok(), "engine sync failed");
  for (NodeId i : state_.holders(chunk)) {
    const double c = engine_.query_cost(i, requester);
    if (decision.source == graph::kInvalidNode || c < decision.cost) {
      decision.source = i;
      decision.cost = c;
    }
  }
  const double producer_cost =
      engine_.query_cost(state_.producer(), requester);
  if (decision.source == graph::kInvalidNode ||
      producer_cost < decision.cost) {
    decision.source = state_.producer();
    decision.cost = producer_cost;
  }
  decision.from_producer = decision.source == state_.producer();
  return decision;
}

util::Status OnlineFairCaching::verify_consistency() const {
  if (util::Status status = state_.verify_integrity(); !status.ok()) {
    return status;
  }
  for (NodeId v = 0; v < state_.num_nodes(); ++v) {
    const auto& age_list = ages_[static_cast<std::size_t>(v)];
    if (v == state_.producer() && !age_list.empty()) {
      return util::Status::invalid_input("producer has age entries");
    }
    std::vector<metrics::ChunkId> aged;
    aged.reserve(age_list.size());
    for (const auto& [age, chunk] : age_list) {
      if (age < 0 || age >= clock_) {
        return util::Status::invalid_input("age stamp out of range");
      }
      aged.push_back(chunk);
    }
    std::sort(aged.begin(), aged.end());
    if (std::adjacent_find(aged.begin(), aged.end()) != aged.end()) {
      return util::Status::invalid_input("duplicate age entry on a node");
    }
    if (aged != state_.chunks_on(v)) {
      return util::Status::invalid_input(
          "age entries do not match cached chunks");
    }
  }
  return util::Status();  // OK
}

}  // namespace faircache::core
