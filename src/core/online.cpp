#include "core/online.h"

#include <algorithm>

#include "confl/confl.h"
#include "graph/shortest_paths.h"

namespace faircache::core {

using graph::NodeId;

OnlineFairCaching::OnlineFairCaching(const FairCachingProblem& problem,
                                     OnlineConfig config)
    : problem_(problem),
      config_(std::move(config)),
      state_(problem.make_initial_state()),
      ages_(static_cast<std::size_t>(state_.num_nodes())) {
  FAIRCACHE_CHECK(problem_.network != nullptr, "problem needs a network");
}

OnlineStepResult OnlineFairCaching::insert_chunk(metrics::ChunkId chunk) {
  OnlineStepResult step;
  step.chunk = chunk;

  confl::ConflInstance instance =
      build_chunk_instance(problem_, state_, config_.approx.instance, chunk);

  // Replacement: full nodes become eligible at a penalty, priced as if one
  // slot were already free.
  if (config_.replacement == ReplacementPolicy::kEvictOldest) {
    for (NodeId v = 0; v < state_.num_nodes(); ++v) {
      if (v == state_.producer() || !state_.full(v) ||
          state_.capacity(v) == 0 || state_.holds(v, chunk)) {
        continue;
      }
      const double used = static_cast<double>(state_.used(v) - 1);
      const double cap = static_cast<double>(state_.capacity(v));
      instance.facility_cost[static_cast<std::size_t>(v)] =
          config_.eviction_penalty + used / (cap - used);
    }
  }

  const confl::ConflSolution solution =
      confl::solve_confl(instance, config_.approx.confl);

  for (NodeId v : solution.open_facilities) {
    auto& age_list = ages_[static_cast<std::size_t>(v)];
    if (state_.full(v)) {
      if (config_.replacement != ReplacementPolicy::kEvictOldest ||
          state_.capacity(v) == 0) {
        continue;  // defensive: solver should not have opened this node
      }
      // Evict the oldest chunk on v.
      const auto oldest = std::min_element(age_list.begin(), age_list.end());
      FAIRCACHE_DCHECK(oldest != age_list.end());
      state_.remove(v, oldest->second);
      age_list.erase(oldest);
      ++total_evictions_;
      step.evicted_from.push_back(v);
    }
    if (state_.can_cache(v, chunk)) {
      state_.add(v, chunk);
      age_list.emplace_back(clock_++, chunk);
      step.cache_nodes.push_back(v);
    }
  }
  return step;
}

void OnlineFairCaching::retire_chunk(metrics::ChunkId chunk) {
  for (NodeId v = 0; v < state_.num_nodes(); ++v) {
    if (v == state_.producer() || !state_.holds(v, chunk)) continue;
    state_.remove(v, chunk);
    auto& age_list = ages_[static_cast<std::size_t>(v)];
    age_list.erase(std::remove_if(age_list.begin(), age_list.end(),
                                  [&](const auto& entry) {
                                    return entry.second == chunk;
                                  }),
                   age_list.end());
  }
}

double OnlineFairCaching::access_cost(metrics::ChunkId chunk) const {
  const metrics::ContentionMatrix contention(
      *problem_.network, state_, config_.approx.instance.path_policy);
  std::vector<NodeId> sources = state_.holders(chunk);
  sources.push_back(state_.producer());

  double total = 0.0;
  for (NodeId j = 0; j < state_.num_nodes(); ++j) {
    if (j == state_.producer()) continue;
    double best = graph::kInfCost;
    for (NodeId i : sources) best = std::min(best, contention.cost(i, j));
    total += best;
  }
  return total;
}

}  // namespace faircache::core
