#pragma once

// Public problem/result types shared by every caching algorithm in the
// library (the paper's approximation algorithm, the distributed algorithm,
// the baselines and the brute-force solver all consume and produce these).

#include <string>
#include <vector>

#include "graph/graph.h"
#include "metrics/cache_state.h"
#include "metrics/contention.h"
#include "metrics/evaluator.h"

namespace faircache::core {

// One instance of the fair-caching problem (paper §III-A): a connected
// network, a producer holding `num_chunks` equal-size chunks, per-node
// cache capacities, and the requirement that every node wants every chunk.
struct FairCachingProblem {
  const graph::Graph* network = nullptr;
  graph::NodeId producer = graph::kInvalidNode;
  int num_chunks = 0;
  // Either a uniform capacity...
  int uniform_capacity = 5;
  // ...or explicit per-node capacities (wins when non-empty).
  std::vector<int> capacities;

  metrics::CacheState make_initial_state() const {
    FAIRCACHE_CHECK(network != nullptr, "problem needs a network");
    if (!capacities.empty()) {
      FAIRCACHE_CHECK(static_cast<int>(capacities.size()) ==
                          network->num_nodes(),
                      "capacity vector size mismatch");
      return metrics::CacheState(capacities, producer);
    }
    return metrics::CacheState(network->num_nodes(), uniform_capacity,
                               producer);
  }
};

// Where one chunk ended up, plus the per-chunk solver diagnostics.
struct ChunkPlacement {
  metrics::ChunkId chunk = 0;
  std::vector<graph::NodeId> cache_nodes;  // sorted
  double solver_objective = 0.0;  // the algorithm's internal objective
  int solver_rounds = 0;          // dual-growth rounds (0 if n/a)
  // assignment[j] = node that j fetches this chunk from according to the
  // algorithm's own protocol (kInvalidNode = unassigned). Empty when the
  // algorithm does not track per-node sources; the evaluator's
  // cheapest-copy assignment is then the only notion of "source".
  std::vector<graph::NodeId> assignment;
};

// Output of a caching algorithm run.
struct FairCachingResult {
  std::string algorithm;
  metrics::CacheState state;  // final storage state
  std::vector<ChunkPlacement> placements;
  double runtime_seconds = 0.0;
  // Liveness at the end of the run when the algorithm executed under node
  // churn (sim::FaultPlan crashes). Empty = every node survived.
  std::vector<char> alive;

  bool node_alive(graph::NodeId v) const {
    return alive.empty() || alive[static_cast<std::size_t>(v)] != 0;
  }

  // Degradation metric: the fraction of (surviving node, chunk) pairs for
  // which the protocol assigned a data source. A fault-free run — and any
  // faulty run after the self-healing repair passes — reports 1.0.
  // Algorithms that don't record assignments report full coverage.
  double coverage() const {
    const graph::NodeId producer = state.producer();
    long pairs = 0;
    long covered = 0;
    for (const ChunkPlacement& placement : placements) {
      if (placement.assignment.empty()) continue;
      for (std::size_t j = 0; j < placement.assignment.size(); ++j) {
        const auto v = static_cast<graph::NodeId>(j);
        if (v == producer || !node_alive(v)) continue;
        ++pairs;
        if (placement.assignment[j] != graph::kInvalidNode) ++covered;
      }
    }
    return pairs == 0 ? 1.0
                      : static_cast<double>(covered) /
                            static_cast<double>(pairs);
  }

  // Scores the final placement with the shared evaluator. Casualties are
  // excluded both as consumers and as sources.
  metrics::PlacementEvaluation evaluate(
      const FairCachingProblem& problem,
      metrics::PathPolicy policy =
          metrics::PathPolicy::kHopShortest) const {
    metrics::EvaluatorOptions options;
    options.num_chunks = problem.num_chunks;
    options.path_policy = policy;
    options.alive = alive.empty() ? nullptr : &alive;
    return metrics::evaluate_placement(*problem.network, state, options);
  }
};

// Common interface so harnesses can sweep algorithms uniformly.
class CachingAlgorithm {
 public:
  virtual ~CachingAlgorithm() = default;
  virtual std::string name() const = 0;
  virtual FairCachingResult run(const FairCachingProblem& problem) = 0;
};

}  // namespace faircache::core
