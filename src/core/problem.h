#pragma once

// Public problem/result types shared by every caching algorithm in the
// library (the paper's approximation algorithm, the distributed algorithm,
// the baselines and the brute-force solver all consume and produce these).

#include <string>
#include <vector>

#include "graph/graph.h"
#include "metrics/cache_state.h"
#include "metrics/contention.h"
#include "metrics/evaluator.h"

namespace faircache::core {

// One instance of the fair-caching problem (paper §III-A): a connected
// network, a producer holding `num_chunks` equal-size chunks, per-node
// cache capacities, and the requirement that every node wants every chunk.
struct FairCachingProblem {
  const graph::Graph* network = nullptr;
  graph::NodeId producer = graph::kInvalidNode;
  int num_chunks = 0;
  // Either a uniform capacity...
  int uniform_capacity = 5;
  // ...or explicit per-node capacities (wins when non-empty).
  std::vector<int> capacities;

  metrics::CacheState make_initial_state() const {
    FAIRCACHE_CHECK(network != nullptr, "problem needs a network");
    if (!capacities.empty()) {
      FAIRCACHE_CHECK(static_cast<int>(capacities.size()) ==
                          network->num_nodes(),
                      "capacity vector size mismatch");
      return metrics::CacheState(capacities, producer);
    }
    return metrics::CacheState(network->num_nodes(), uniform_capacity,
                               producer);
  }
};

// Where one chunk ended up, plus the per-chunk solver diagnostics.
struct ChunkPlacement {
  metrics::ChunkId chunk = 0;
  std::vector<graph::NodeId> cache_nodes;  // sorted
  double solver_objective = 0.0;  // the algorithm's internal objective
  int solver_rounds = 0;          // dual-growth rounds (0 if n/a)
};

// Output of a caching algorithm run.
struct FairCachingResult {
  std::string algorithm;
  metrics::CacheState state;  // final storage state
  std::vector<ChunkPlacement> placements;
  double runtime_seconds = 0.0;

  // Scores the final placement with the shared evaluator.
  metrics::PlacementEvaluation evaluate(
      const FairCachingProblem& problem,
      metrics::PathPolicy policy =
          metrics::PathPolicy::kHopShortest) const {
    metrics::EvaluatorOptions options;
    options.num_chunks = problem.num_chunks;
    options.path_policy = policy;
    return metrics::evaluate_placement(*problem.network, state, options);
  }
};

// Common interface so harnesses can sweep algorithms uniformly.
class CachingAlgorithm {
 public:
  virtual ~CachingAlgorithm() = default;
  virtual std::string name() const = 0;
  virtual FairCachingResult run(const FairCachingProblem& problem) = 0;
};

}  // namespace faircache::core
