#include "core/approx.h"

#include "util/stopwatch.h"

namespace faircache::core {

FairCachingResult ApproxFairCaching::run(const FairCachingProblem& problem) {
  FAIRCACHE_CHECK(problem.network != nullptr, "problem needs a network");
  FAIRCACHE_CHECK(problem.num_chunks >= 0, "negative chunk count");

  util::Stopwatch clock;
  FairCachingResult result;
  result.algorithm = name();
  result.state = problem.make_initial_state();

  for (metrics::ChunkId chunk = 0; chunk < problem.num_chunks; ++chunk) {
    // Lines 5–16: refresh f_i and c_ij from the current storage state.
    const confl::ConflInstance instance =
        build_chunk_instance(problem, result.state, config_.instance, chunk);
    // Lines 17–47: primal–dual growth + Steiner connection.
    const confl::ConflSolution solution =
        confl::solve_confl(instance, config_.confl);

    ChunkPlacement placement;
    placement.chunk = chunk;
    placement.solver_objective = solution.total();
    placement.solver_rounds = solution.rounds;
    for (graph::NodeId v : solution.open_facilities) {
      // A node with finite f_i always has room (full nodes are +inf), and
      // the solver never opens the producer; guard anyway for robustness.
      if (result.state.can_cache(v, chunk)) {
        result.state.add(v, chunk);
        placement.cache_nodes.push_back(v);
      }
    }
    result.placements.push_back(std::move(placement));
  }

  result.runtime_seconds = clock.elapsed_seconds();
  return result;
}

}  // namespace faircache::core
