#include "core/approx.h"

#include <algorithm>
#include <limits>

#include "graph/shortest_paths.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace faircache::core {

namespace {

using graph::NodeId;

// Degraded-mode cache set for a chunk the ConFL solver never reached: the
// greedy hop-count facility heuristic (the "Hopc" baseline's core move,
// re-derived here because core cannot link the baselines module).
// Starting from the existing copies of the chunk (producer + holders),
// repeatedly add the capacity-respecting node with the largest net gain
//     Σ_j max(0, hops(j, nearest copy) − hops(j, v)) − hops(v, nearest copy)
// — access-delay savings minus a λ = 1 dissemination penalty for shipping
// the chunk to v — until no node nets a strict improvement. The penalty is
// what stops the set from degenerating to "cache everywhere" (the self
// term alone always pays for a free node). Selection respects can_cache,
// so later chunks spread onto nodes the earlier fallback chunks filled
// up. Smallest-id tie-breaks keep it deterministic.
//
// `hops` is graph::all_pairs_hops over the validated (connected) network,
// so every entry is finite.
std::vector<NodeId> greedy_fallback_set(const util::Matrix<int>& hops,
                                        const metrics::CacheState& state,
                                        metrics::ChunkId chunk,
                                        NodeId producer) {
  const std::size_t n = hops.rows();
  const int* producer_row = hops[static_cast<std::size_t>(producer)];
  std::vector<int> nearest(producer_row, producer_row + n);
  std::vector<char> chosen(n, 0);
  chosen[static_cast<std::size_t>(producer)] = 1;
  for (NodeId h : state.holders(chunk)) {
    chosen[static_cast<std::size_t>(h)] = 1;
    const int* row = hops[static_cast<std::size_t>(h)];
    for (std::size_t j = 0; j < n; ++j) {
      nearest[j] = std::min(nearest[j], row[j]);
    }
  }
  std::vector<NodeId> set;
  while (true) {
    long best_gain = 0;
    NodeId best_v = graph::kInvalidNode;
    for (std::size_t v = 0; v < n; ++v) {
      if (chosen[v] || !state.can_cache(static_cast<NodeId>(v), chunk)) {
        continue;
      }
      const int* row = hops[v];
      long gain = -static_cast<long>(nearest[v]);  // dissemination penalty
      for (std::size_t j = 0; j < n; ++j) {
        gain += std::max(0, nearest[j] - row[j]);
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_v = static_cast<NodeId>(v);
      }
    }
    if (best_v == graph::kInvalidNode) break;
    chosen[static_cast<std::size_t>(best_v)] = 1;
    set.push_back(best_v);
    const int* row = hops[static_cast<std::size_t>(best_v)];
    for (std::size_t j = 0; j < n; ++j) {
      nearest[j] = std::min(nearest[j], row[j]);
    }
  }
  std::sort(set.begin(), set.end());
  return set;
}

// Sparse twin of greedy_fallback_set for kSparse runs, where the dense
// all-pairs hop matrix would be exactly the O(n²) allocation the mode
// exists to avoid. Same greedy move and tie-breaks; the differences are
// representational:
//   * nearest-copy distances come from one multi-source BFS (producer +
//     holders) and are re-relaxed by a BFS from each newly chosen node;
//   * a candidate's access-delay saving is summed over its truncated BFS
//     ball (the contention radius) — savings beyond the radius are
//     forfeited, mirroring the cost model the solver itself ran under.
// On a connected network with an unbounded radius the gains equal the
// dense fallback's, so the chosen sets agree.
std::vector<NodeId> sparse_greedy_fallback_set(
    const graph::Graph& g, const graph::CsrAdjacency& adj,
    const metrics::CacheState& state, metrics::ChunkId chunk, NodeId producer,
    int radius, int threads) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const int limit = radius > 0 ? radius : g.num_nodes();
  const int* offset = adj.offset.data();
  const NodeId* neighbor = adj.neighbor.data();

  // Distance to the nearest existing copy; improvements-only BFS keeps it
  // current as the set grows. The validated network is connected, so every
  // entry is finite after the first sweep.
  std::vector<int> nearest(n, std::numeric_limits<int>::max());
  std::vector<NodeId> wave;
  wave.reserve(n);
  auto relax = [&]() {
    for (std::size_t head = 0; head < wave.size(); ++head) {
      const NodeId v = wave[head];
      const int dv = nearest[static_cast<std::size_t>(v)];
      for (int e = offset[v]; e < offset[v + 1]; ++e) {
        const auto w = static_cast<std::size_t>(neighbor[e]);
        if (nearest[w] > dv + 1) {
          nearest[w] = dv + 1;
          wave.push_back(neighbor[e]);
        }
      }
    }
    wave.clear();
  };
  std::vector<char> chosen(n, 0);
  auto seed = [&](NodeId v) {
    chosen[static_cast<std::size_t>(v)] = 1;
    if (nearest[static_cast<std::size_t>(v)] != 0) {
      nearest[static_cast<std::size_t>(v)] = 0;
      wave.push_back(v);
    }
  };
  seed(producer);
  for (NodeId h : state.holders(chunk)) seed(h);
  relax();

  struct Scratch {
    std::vector<int> stamp;
    std::vector<int> depth;
    std::vector<NodeId> queue;
    int gen = 0;
  };
  const int workers = util::resolve_parallel_threads(threads, n);
  std::vector<Scratch> ws(static_cast<std::size_t>(workers));
  for (Scratch& w : ws) {
    w.stamp.assign(n, 0);
    w.depth.resize(n);
    w.queue.reserve(n);
  }
  constexpr long long kNotCandidate = std::numeric_limits<long long>::min();
  std::vector<long long> gain(n);

  std::vector<NodeId> set;
  while (true) {
    util::parallel_for(
        n,
        [&](std::size_t v, int worker) {
          gain[v] = kNotCandidate;
          if (chosen[v] || !state.can_cache(static_cast<NodeId>(v), chunk)) {
            return;
          }
          Scratch& w = ws[static_cast<std::size_t>(worker)];
          const int gen = ++w.gen;
          long long sum = -static_cast<long long>(nearest[v]);
          w.queue.clear();
          w.stamp[v] = gen;
          w.depth[v] = 0;
          w.queue.push_back(static_cast<NodeId>(v));
          for (std::size_t head = 0; head < w.queue.size(); ++head) {
            const NodeId u = w.queue[head];
            const auto uu = static_cast<std::size_t>(u);
            const int du = w.depth[uu];
            if (nearest[uu] > du) sum += nearest[uu] - du;
            if (du >= limit) continue;
            for (int e = offset[u]; e < offset[u + 1]; ++e) {
              const auto nb = static_cast<std::size_t>(neighbor[e]);
              if (w.stamp[nb] == gen) continue;
              w.stamp[nb] = gen;
              w.depth[nb] = du + 1;
              w.queue.push_back(neighbor[e]);
            }
          }
          gain[v] = sum;
        },
        workers);
    long long best_gain = 0;
    NodeId best_v = graph::kInvalidNode;
    for (std::size_t v = 0; v < n; ++v) {  // ascending: smallest-id ties win
      if (gain[v] != kNotCandidate && gain[v] > best_gain) {
        best_gain = gain[v];
        best_v = static_cast<NodeId>(v);
      }
    }
    if (best_v == graph::kInvalidNode) break;
    chosen[static_cast<std::size_t>(best_v)] = 1;
    set.push_back(best_v);
    if (nearest[static_cast<std::size_t>(best_v)] != 0) {
      nearest[static_cast<std::size_t>(best_v)] = 0;
      wave.push_back(best_v);
      relax();
    }
  }
  std::sort(set.begin(), set.end());
  return set;
}

}  // namespace

FairCachingResult ApproxFairCaching::run(const FairCachingProblem& problem) {
  util::Result<FairCachingResult> result = solve(problem);
  if (!result.ok()) {
    util::check_failed("solve(problem).ok()", __FILE__, __LINE__,
                       result.status().message());
  }
  return std::move(result).value();
}

util::Result<FairCachingResult> ApproxFairCaching::solve(
    const FairCachingProblem& problem, const util::RunBudget& budget,
    SolveReport* report) {
  SolveReport local_report;
  SolveReport& rep = report != nullptr ? *report : local_report;
  rep = SolveReport{};

  if (util::Status status = validate_problem(problem); !status.ok()) {
    return status;
  }

  util::Stopwatch clock;
  FairCachingResult result;
  result.algorithm = name();
  result.state = problem.make_initial_state();
  rep.chunks_total = problem.num_chunks;

  ChunkInstanceEngine engine(problem, config_.instance);
  rep.contention_mode_used = engine.mode_used();
  metrics::ChunkId chunk = 0;
  for (; chunk < problem.num_chunks; ++chunk) {
    if (budget.expired()) break;
    util::Stopwatch phase;
    // Lines 5–16: refresh f_i and c_ij from the current storage state —
    // incrementally when the engine can delta-patch the previous chunk's
    // buffers, from scratch otherwise.
    util::Result<confl::ConflInstance> instance =
        engine.build(result.state, chunk);
    rep.build_seconds += phase.elapsed_seconds();
    if (!instance.ok()) return instance.status();

    phase.reset();
    // Lines 17–47: primal–dual growth + Steiner connection.
    util::Result<confl::ConflSolution> solution =
        confl::try_solve_confl(instance.value(), config_.confl, budget);
    rep.solve_seconds += phase.elapsed_seconds();
    if (!solution.ok()) {
      // Budget expiry mid-solve degrades this chunk and the rest; any
      // other failure (invalid instance, non-convergence) is a real error.
      if (budget.expired()) break;
      return solution.status();
    }
    // The solver is done with the cost buffers: hand them back so the next
    // chunk's build can patch them in place.
    engine.reclaim(std::move(instance).value());

    ChunkPlacement placement;
    placement.chunk = chunk;
    placement.solver_objective = solution.value().total();
    placement.solver_rounds = solution.value().rounds;
    for (graph::NodeId v : solution.value().open_facilities) {
      // A node with finite f_i always has room (full nodes are +inf), and
      // the solver never opens the producer; guard anyway for robustness.
      if (result.state.can_cache(v, chunk)) {
        result.state.add(v, chunk);
        placement.cache_nodes.push_back(v);
      }
    }
    result.placements.push_back(std::move(placement));
  }
  rep.build_tree_seconds = engine.stats().tree_seconds;
  rep.build_delta_seconds = engine.stats().delta_seconds;
  rep.guard = engine.guard_report();

  if (chunk < problem.num_chunks) {
    // Anytime degradation: the budget ran out with chunks left. Keep every
    // ConFL placement made so far and fill the remainder with the greedy
    // fallback set — the result stays feasible (can_cache guards every
    // insertion) and the report says exactly what happened.
    rep.stop_reason = budget.status("appx chunk loop");
    util::Stopwatch phase;
    if (engine.mode_used() == ContentionMode::kSparse) {
      // A sparse run must degrade sparsely too: the dense all-pairs hop
      // matrix is exactly the O(n²) allocation kSparse exists to avoid.
      const graph::CsrAdjacency adj = graph::build_csr(*problem.network);
      for (; chunk < problem.num_chunks; ++chunk) {
        ChunkPlacement placement;
        placement.chunk = chunk;
        for (graph::NodeId v : sparse_greedy_fallback_set(
                 *problem.network, adj, result.state, chunk, problem.producer,
                 config_.instance.contention_radius,
                 config_.instance.threads)) {
          result.state.add(v, chunk);
          placement.cache_nodes.push_back(v);
        }
        rep.degraded_chunks.push_back(chunk);
        result.placements.push_back(std::move(placement));
      }
    } else {
      const util::Matrix<int> hops =
          graph::all_pairs_hops(*problem.network, config_.instance.threads);
      for (; chunk < problem.num_chunks; ++chunk) {
        ChunkPlacement placement;
        placement.chunk = chunk;
        for (graph::NodeId v : greedy_fallback_set(
                 hops, result.state, chunk, problem.producer)) {
          result.state.add(v, chunk);
          placement.cache_nodes.push_back(v);
        }
        rep.degraded_chunks.push_back(chunk);
        result.placements.push_back(std::move(placement));
      }
    }
    rep.fallback_seconds = phase.elapsed_seconds();
  }

  result.runtime_seconds = clock.elapsed_seconds();
  rep.total_seconds = result.runtime_seconds;
  return result;
}

}  // namespace faircache::core
