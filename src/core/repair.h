#pragma once

// Budgeted placement repair — the self-healing half of the churn runtime
// (docs/CHURN.md). A placement computed on a stable topology degrades when
// peers depart, crash, or lose links: replicas held by dead nodes are gone
// and the survivors fetch from farther away. The PlacementRepairEngine
// restores coverage with *local, bounded* adjustment instead of a full
// re-solve (the Ioannidis–Yeh adaptive-caching insight, PAPERS.md):
//
//   0. Evict: copies held by dead nodes are removed (holder-aliveness is a
//      validity requirement, so eviction always runs, even under an
//      expired budget) and counted as lost replicas per chunk.
//   1. Local re-hosting: for each affected chunk, replacement copies are
//      placed greedily on alive, capacity-respecting, reachable nodes that
//      maximize the net hop-distance saving (the same move as the anytime
//      greedy fallback in core/approx), up to the number of replicas lost.
//   2. Escalation: a chunk whose local pass could not restore every lost
//      replica is re-solved from scratch — one per-chunk ConFL solve over
//      the producer's alive component through core::ChunkInstanceEngine,
//      applied transactionally (the old copies are only dropped once the
//      solver has succeeded).
//
// All three phases are cooperatively charged against a util::RunBudget and
// the result is *anytime*: whenever the budget expires (work cap, deadline
// or CancelToken) the engine stops between atomic placement operations, so
// the state it leaves behind always passes core::validate_placement — a
// partial repair is a valid repair. Work-unit charges happen at
// deterministic sequential points, so under a pure work-unit budget the
// repair (including where it truncates) is bit-identical at any thread
// count.

#include <cstdint>
#include <vector>

#include "core/approx.h"
#include "core/problem.h"
#include "util/deadline.h"
#include "util/status.h"

namespace faircache::core {

// How far a repair pass is allowed to escalate.
enum class RepairLevel {
  kEvictOnly,         // detection + eviction; nothing is restored
  kLocal,             // + greedy local re-hosting
  kLocalThenResolve,  // + per-affected-chunk ConFL re-solves (default)
};

struct RepairOptions {
  RepairLevel level = RepairLevel::kLocalThenResolve;
  // Solver configuration for escalation re-solves (contention engine,
  // Steiner engine, fairness model). `approx.instance.threads` also drives
  // the parallel hop-matrix build and candidate scans of the local pass.
  ApproxConfig approx;
};

// Typed outcome of one repair pass. Timing fields are wall-clock and
// non-deterministic; everything else is bit-deterministic under a fixed
// work-unit budget at any thread count.
struct RepairReport {
  util::Status stop_reason;  // OK, or why the pass truncated early
  int replicas_lost = 0;      // copies evicted from dead holders
  int replicas_restored = 0;  // net copies added back across all chunks
  int chunks_affected = 0;    // chunks that lost at least one replica
  int chunks_local = 0;       // fully restored by the local pass alone
  int chunks_resolved = 0;    // escalated to a per-chunk ConFL re-solve
  int chunks_unrepaired = 0;  // affected chunks left short (budget/level)
  // (alive node, chunk) pairs with no reachable copy — demand stranded in
  // a component holding neither the producer nor a surviving replica.
  // Nothing can restore these until connectivity returns; they are the
  // graceful-degradation residue, not a repair failure.
  long unservable_pairs = 0;
  // Deterministic work units charged (BFS rows, candidate scans, re-solve
  // nodes) — the "repair work" compared against a full re-solve in
  // bench/abl_churn.
  std::uint64_t work_units = 0;
  // Total contention cost on the producer's alive component before and
  // after the pass. Filled by the churn runtime (sim::run_churn), which
  // already evaluates the timeline; the engine itself leaves them at -1
  // (a full evaluation does not belong under the repair budget).
  double cost_before = -1.0;
  double cost_after = -1.0;
  double detect_seconds = 0.0;   // eviction + reachability scan
  double local_seconds = 0.0;    // hop matrix + greedy re-hosting
  double resolve_seconds = 0.0;  // escalation ConFL solves
  double total_seconds = 0.0;
  // Integrity-guard activity of the escalation engines, merged across all
  // per-chunk re-solves (core/engine_guard.h). guard.clean() for any
  // healthy pass.
  CorruptionReport guard;

  bool complete() const { return chunks_unrepaired == 0; }
};

// Restriction of a placement to the alive nodes of the producer's
// connected component: the induced subgraph (with id maps) plus a
// CacheState over it mirroring per-node capacities and holdings. This is
// the instance every escalation re-solve and every component-level
// evaluation runs on. Requires the producer to be alive.
struct AliveComponent {
  graph::Subgraph sub;
  metrics::CacheState state;
};

AliveComponent induce_alive_component(const graph::Graph& snapshot,
                                      const std::vector<char>& alive,
                                      const metrics::CacheState& state);

class PlacementRepairEngine {
 public:
  explicit PlacementRepairEngine(RepairOptions options = {})
      : options_(std::move(options)) {}

  // Repairs `state` in place against the current topology `snapshot` and
  // liveness mask `alive` (dead nodes must be isolated in or absent from
  // the BFS reachability sense — the engine never routes through them).
  //
  //  * kInvalidInput for size mismatches, a negative chunk count or a dead
  //    producer — returned before any mutation.
  //  * Budget expiry is NOT an error: the result is OK, `state` is valid
  //    (eviction always completes) and the report's stop_reason carries
  //    the typed reason with per-chunk truncation counts.
  util::Result<RepairReport> repair(const graph::Graph& snapshot,
                                    const std::vector<char>& alive,
                                    int num_chunks,
                                    metrics::CacheState& state,
                                    const util::RunBudget& budget = {});

  const RepairOptions& options() const { return options_; }

 private:
  RepairOptions options_;
};

}  // namespace faircache::core
