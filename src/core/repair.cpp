#include "core/repair.h"

#include <algorithm>
#include <limits>

#include "core/instance_builder.h"
#include "core/validate.h"
#include "graph/shortest_paths.h"
#include "util/check.h"
#include "util/matrix.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace faircache::core {

namespace {

using graph::NodeId;
using metrics::ChunkId;

bool is_alive(const std::vector<char>& alive, NodeId v) {
  return alive[static_cast<std::size_t>(v)] != 0;
}

// BFS hop distances from `source` that never routes through dead nodes.
// Writes kUnreachable for dead nodes and nodes cut off from the source.
void alive_bfs_row(const graph::Graph& g, const std::vector<char>& alive,
                   NodeId source, int* dist) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::fill(dist, dist + n, graph::kUnreachable);
  if (!is_alive(alive, source)) return;
  std::vector<NodeId> frontier;
  dist[static_cast<std::size_t>(source)] = 0;
  frontier.push_back(source);
  std::size_t head = 0;
  while (head < frontier.size()) {
    const NodeId v = frontier[head++];
    for (NodeId w : g.neighbors(v)) {
      if (!is_alive(alive, w)) continue;
      if (dist[static_cast<std::size_t>(w)] == graph::kUnreachable) {
        dist[static_cast<std::size_t>(w)] =
            dist[static_cast<std::size_t>(v)] + 1;
        frontier.push_back(w);
      }
    }
  }
}

// Multi-source variant: hop distance to the nearest of `sources`.
std::vector<int> alive_multi_bfs(const graph::Graph& g,
                                 const std::vector<char>& alive,
                                 const std::vector<NodeId>& sources) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<int> dist(n, graph::kUnreachable);
  std::vector<NodeId> frontier;
  for (NodeId s : sources) {
    if (!is_alive(alive, s)) continue;
    if (dist[static_cast<std::size_t>(s)] == 0) continue;
    dist[static_cast<std::size_t>(s)] = 0;
    frontier.push_back(s);
  }
  std::size_t head = 0;
  while (head < frontier.size()) {
    const NodeId v = frontier[head++];
    for (NodeId w : g.neighbors(v)) {
      if (!is_alive(alive, w)) continue;
      if (dist[static_cast<std::size_t>(w)] == graph::kUnreachable) {
        dist[static_cast<std::size_t>(w)] =
            dist[static_cast<std::size_t>(v)] + 1;
        frontier.push_back(w);
      }
    }
  }
  return dist;
}

}  // namespace

AliveComponent induce_alive_component(const graph::Graph& snapshot,
                                      const std::vector<char>& alive,
                                      const metrics::CacheState& state) {
  FAIRCACHE_CHECK(snapshot.num_nodes() == state.num_nodes(),
                  "snapshot / placement size mismatch");
  FAIRCACHE_CHECK(static_cast<int>(alive.size()) == snapshot.num_nodes(),
                  "liveness mask size mismatch");
  const NodeId producer = state.producer();
  FAIRCACHE_CHECK(producer >= 0 && is_alive(alive, producer),
                  "producer must be alive to induce its component");

  const std::vector<int> dist =
      alive_multi_bfs(snapshot, alive, {producer});
  std::vector<NodeId> keep;
  for (NodeId v = 0; v < snapshot.num_nodes(); ++v) {
    if (dist[static_cast<std::size_t>(v)] != graph::kUnreachable) {
      keep.push_back(v);
    }
  }

  AliveComponent component;
  component.sub = graph::induced_subgraph(snapshot, keep);
  std::vector<int> capacities;
  capacities.reserve(keep.size());
  for (NodeId v : keep) capacities.push_back(state.capacity(v));
  component.state = metrics::CacheState(
      std::move(capacities),
      component.sub.to_new[static_cast<std::size_t>(producer)]);
  for (NodeId v : keep) {
    const NodeId nv = component.sub.to_new[static_cast<std::size_t>(v)];
    for (ChunkId c : state.chunks_on(v)) component.state.add(nv, c);
  }
  return component;
}

util::Result<RepairReport> PlacementRepairEngine::repair(
    const graph::Graph& snapshot, const std::vector<char>& alive,
    int num_chunks, metrics::CacheState& state,
    const util::RunBudget& budget) {
  using util::Status;
  RepairReport report;
  util::Stopwatch clock;

  const int n = snapshot.num_nodes();
  if (state.num_nodes() != n) {
    return Status::invalid_input("snapshot / placement size mismatch");
  }
  if (static_cast<int>(alive.size()) != n) {
    return Status::invalid_input("liveness mask size mismatch");
  }
  if (num_chunks < 0) {
    return Status::invalid_input("negative chunk count");
  }
  const NodeId producer = state.producer();
  if (producer < 0 || producer >= n) {
    return Status::invalid_input("placement has no valid producer");
  }
  if (options_.approx.instance.guard.enabled) {
    // Repair mutates the placement in place; refuse to "heal" on top of a
    // structurally corrupted state (docs/ROBUSTNESS.md, "Integrity
    // guard") — the caller must rebuild it instead.
    if (Status status = state.verify_integrity(); !status.ok()) {
      return status;
    }
  }
  if (!is_alive(alive, producer)) {
    return Status::invalid_input(
        "producer is dead; the data source cannot be repaired around");
  }
  const int threads = options_.approx.instance.threads;

  // Charges deterministic work at sequential points only, so a pure
  // work-unit budget truncates at the same program point regardless of
  // thread count or machine load.
  auto charge = [&](std::uint64_t units) {
    report.work_units += units;
    budget.charge(units);
  };

  // --- Phase 0: detection + eviction (never budget-gated — a dead holder
  // is a validity violation, not an optimization). ---
  util::Stopwatch phase;
  std::vector<int> lost(static_cast<std::size_t>(num_chunks), 0);
  for (NodeId v = 0; v < n; ++v) {
    if (is_alive(alive, v)) continue;
    const std::vector<ChunkId> held = state.chunks_on(v);
    for (ChunkId c : held) {
      state.remove(v, c);
      ++lost[static_cast<std::size_t>(c)];
      ++report.replicas_lost;
    }
  }
  std::vector<ChunkId> affected;
  for (ChunkId c = 0; c < num_chunks; ++c) {
    if (lost[static_cast<std::size_t>(c)] > 0) affected.push_back(c);
  }
  report.chunks_affected = static_cast<int>(affected.size());

  // Disconnected-demand scan: (alive node, chunk) pairs whose component
  // holds no copy at all. These cannot be repaired — a new replica has to
  // be fetched from an existing one — so they are reported, not retried.
  for (ChunkId c = 0; c < num_chunks; ++c) {
    std::vector<NodeId> sources = state.holders(c);
    sources.push_back(producer);
    const std::vector<int> dist = alive_multi_bfs(snapshot, alive, sources);
    for (NodeId j = 0; j < n; ++j) {
      if (j == producer || !is_alive(alive, j)) continue;
      if (dist[static_cast<std::size_t>(j)] == graph::kUnreachable) {
        ++report.unservable_pairs;
      }
    }
  }
  charge(static_cast<std::uint64_t>(num_chunks));
  report.detect_seconds = phase.elapsed_seconds();

  auto finish = [&](Status stop, int chunks_left) {
    report.stop_reason = std::move(stop);
    report.chunks_unrepaired += chunks_left;
    report.total_seconds = clock.elapsed_seconds();
    return report;
  };

  if (affected.empty() || options_.level == RepairLevel::kEvictOnly) {
    const int left =
        options_.level == RepairLevel::kEvictOnly ? report.chunks_affected
                                                  : 0;
    return finish(Status(), left);
  }
  if (budget.expired()) {
    return finish(budget.status("repair detection"),
                  report.chunks_affected);
  }

  // --- Phase 1: local re-hosting. One hop-matrix build feeds every
  // chunk's greedy pass; rows are independent, so the build runs under
  // the budget and the whole matrix is discarded if it expires mid-loop
  // (a torn matrix must never influence placement decisions). ---
  phase.reset();
  charge(static_cast<std::uint64_t>(n));
  if (budget.expired()) {
    return finish(budget.status("repair hop matrix"),
                  report.chunks_affected);
  }
  util::Matrix<int> hops(static_cast<std::size_t>(n),
                         static_cast<std::size_t>(n));
  util::parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t v) {
        alive_bfs_row(snapshot, alive, static_cast<NodeId>(v), hops[v]);
      },
      threads, budget);
  if (budget.expired()) {
    // The loop may have returned with rows unwritten; nothing below may
    // read them (the parallel_for cancellation contract).
    return finish(budget.status("repair hop matrix"),
                  report.chunks_affected);
  }

  std::vector<ChunkId> escalate;
  std::vector<long> gain(static_cast<std::size_t>(n));
  bool truncated = false;
  std::size_t next_chunk = 0;
  for (; next_chunk < affected.size(); ++next_chunk) {
    const ChunkId c = affected[next_chunk];
    if (budget.expired()) {
      truncated = true;
      break;
    }
    std::vector<NodeId> sources = state.holders(c);
    sources.push_back(producer);
    std::vector<int> nearest = alive_multi_bfs(snapshot, alive, sources);

    int restored = 0;
    bool chunk_truncated = false;
    while (restored < lost[static_cast<std::size_t>(c)]) {
      charge(static_cast<std::uint64_t>(n));
      if (budget.expired()) {
        chunk_truncated = true;
        break;
      }
      util::parallel_for(
          static_cast<std::size_t>(n),
          [&](std::size_t vi) {
            const auto v = static_cast<NodeId>(vi);
            gain[vi] = std::numeric_limits<long>::min();
            if (!is_alive(alive, v) || !state.can_cache(v, c)) return;
            const int reach = nearest[vi];
            if (reach == graph::kUnreachable) return;  // no copy to fetch
            const int* row = hops[vi];
            long g = -static_cast<long>(reach);  // dissemination penalty
            for (std::size_t j = 0; j < static_cast<std::size_t>(n); ++j) {
              const int nj = nearest[j];
              if (nj == graph::kUnreachable || row[j] >= nj) continue;
              g += nj - row[j];
            }
            gain[vi] = g;
          },
          threads, budget);
      if (budget.expired()) {
        // Partial gain array — discard it rather than act on torn data.
        chunk_truncated = true;
        break;
      }
      long best_gain = 0;
      NodeId best_v = graph::kInvalidNode;
      for (std::size_t vi = 0; vi < static_cast<std::size_t>(n); ++vi) {
        if (gain[vi] > best_gain) {
          best_gain = gain[vi];
          best_v = static_cast<NodeId>(vi);
        }
      }
      if (best_v == graph::kInvalidNode) break;  // no net improvement left
      state.add(best_v, c);
      ++restored;
      ++report.replicas_restored;
      const int* row = hops[static_cast<std::size_t>(best_v)];
      for (std::size_t j = 0; j < static_cast<std::size_t>(n); ++j) {
        nearest[j] = std::min(nearest[j], row[j]);
      }
    }
    if (chunk_truncated) {
      truncated = true;
      break;
    }
    if (restored >= lost[static_cast<std::size_t>(c)]) {
      ++report.chunks_local;
    } else if (options_.level == RepairLevel::kLocalThenResolve) {
      escalate.push_back(c);
    } else {
      ++report.chunks_unrepaired;
    }
  }
  report.local_seconds = phase.elapsed_seconds();
  if (truncated) {
    return finish(budget.status("repair local pass"),
                  static_cast<int>(affected.size() - next_chunk));
  }

  // --- Phase 2: escalation — per-chunk ConFL re-solves over the
  // producer's alive component, applied transactionally. ---
  phase.reset();
  for (std::size_t e = 0; e < escalate.size(); ++e) {
    const ChunkId c = escalate[e];
    charge(static_cast<std::uint64_t>(n));
    if (budget.expired()) {
      report.resolve_seconds = phase.elapsed_seconds();
      return finish(budget.status("repair escalation"),
                    static_cast<int>(escalate.size() - e));
    }
    AliveComponent component = induce_alive_component(snapshot, alive, state);
    // Re-solve chunk c from scratch: the solver sees the component without
    // any copy of c (fairness costs still reflect every other chunk).
    for (NodeId v = 0; v < component.state.num_nodes(); ++v) {
      if (component.state.holds(v, c)) component.state.remove(v, c);
    }
    FairCachingProblem sub_problem;
    sub_problem.network = &component.sub.graph;
    sub_problem.producer = component.state.producer();
    sub_problem.num_chunks = num_chunks;
    sub_problem.capacities.reserve(
        static_cast<std::size_t>(component.state.num_nodes()));
    for (NodeId v = 0; v < component.state.num_nodes(); ++v) {
      sub_problem.capacities.push_back(component.state.capacity(v));
    }
    InstanceOptions instance_options = options_.approx.instance;
    instance_options.demand = nullptr;  // demand rows index original ids
    ChunkInstanceEngine engine(sub_problem, instance_options);
    util::Result<confl::ConflInstance> instance =
        engine.build(component.state, c);
    report.guard.merge(engine.guard_report());
    if (!instance.ok()) return instance.status();
    util::Result<confl::ConflSolution> solution =
        confl::try_solve_confl(instance.value(), options_.approx.confl,
                               budget);
    if (!solution.ok()) {
      if (budget.expired()) {
        // Mid-solve expiry: the chunk keeps its (partial) local repair —
        // still a valid placement — and is reported unrepaired.
        report.resolve_seconds = phase.elapsed_seconds();
        return finish(budget.status("repair escalation"),
                      static_cast<int>(escalate.size() - e));
      }
      // Solver failure on this component (e.g. dual growth hit its round
      // cap): the chunk keeps its partial local repair and stays counted
      // as unrepaired; later chunks still get their chance.
      ++report.chunks_unrepaired;
      continue;
    }
    // Transactional swap: drop the component's old copies of c, then place
    // the re-solved set (both loops preserve validity step by step).
    const int before = static_cast<int>(state.holders(c).size());
    for (NodeId v = 0; v < component.state.num_nodes(); ++v) {
      const NodeId orig =
          component.sub.to_original[static_cast<std::size_t>(v)];
      if (state.holds(orig, c)) state.remove(orig, c);
    }
    for (NodeId v : solution.value().open_facilities) {
      const NodeId orig =
          component.sub.to_original[static_cast<std::size_t>(v)];
      if (state.can_cache(orig, c)) state.add(orig, c);
    }
    report.replicas_restored +=
        static_cast<int>(state.holders(c).size()) - before;
    ++report.chunks_resolved;
  }
  report.resolve_seconds = phase.elapsed_seconds();
  return finish(Status(), 0);
}

}  // namespace faircache::core
