#pragma once

// Builds the per-chunk ConFL instance of transform (8): fairness degree
// costs as facility costs, path contention costs as assignment costs, and
// contention edge costs for the dissemination tree — all read from the
// *current* cache state, which is how Algorithm 1 couples consecutive
// chunks (caching a chunk raises a node's f_i and its 1+S(k) factor).
//
// Two contention engines produce those costs. kRebuild constructs a fresh
// metrics::ContentionMatrix per chunk — the stateless reference path.
// kIncremental keeps a metrics::ContentionUpdater alive across the chunk
// loop: BFS trees are pinned once and each later chunk only applies the
// sparse weight deltas from the nodes the previous placement touched
// (docs/PERF.md, "Incremental instance engine"). On the paper's
// integer-valued contention weights both engines are bit-identical.

#include <functional>
#include <memory>

#include "confl/confl.h"
#include "core/engine_guard.h"
#include "core/problem.h"
#include "metrics/contention_updater.h"
#include "metrics/fairness.h"
#include "metrics/sparse_contention.h"
#include "util/status.h"

namespace faircache::core {

class ChunkInstanceEngine;

// How the per-chunk contention costs are produced across a chunk loop.
// Every mode except kSparse yields a dense n×n ConflInstance::assign_cost;
// kSparse yields ConflInstance::sparse_cost candidate rows instead. The
// engine's resolved choice (fallbacks applied, kAuto decided) is surfaced
// by ChunkInstanceEngine::mode_used() and SolveReport::contention_mode_used.
enum class ContentionMode {
  // Delta-patch a persistent ContentionUpdater (pinned BFS trees). The
  // default: exact on integer-valued weights, and the full build phase of
  // every chunk after the first drops from O(n·m) to one linear sweep.
  // Applies only under PathPolicy::kHopShortest; kMinContention paths
  // depend on the weights themselves and fall back to kRebuild
  // (mode_used() reports the fallback).
  kIncremental,
  // Fresh ContentionMatrix per chunk — the reference engine, bit-identical
  // to the historical per-chunk rebuild at any thread count.
  kRebuild,
  // Sparse candidate-row engine (metrics::SparseContentionUpdater): only
  // pairs within `contention_radius` hops are materialized, breaking the
  // O(n²) memory wall (docs/PERF.md). Hop-shortest only (falls back to
  // kRebuild otherwise, like kIncremental). With radius ≥ the graph
  // diameter the placements are bit-identical to kIncremental on
  // connected networks.
  kSparse,
  // Density-adaptive choice between kIncremental and kSparse per problem,
  // from n and the radius-estimated row fill (choose_contention_mode).
  kAuto,
};

struct InstanceOptions {
  metrics::PathPolicy path_policy = metrics::PathPolicy::kHopShortest;
  double edge_scale = 1.0;  // the M multiplier on dissemination edges
  metrics::FairnessModel fairness;
  // Worker threads for the contention-matrix build (0 = the
  // util::parallel_threads() default, i.e. FAIRCACHE_THREADS or hardware
  // concurrency; 1 = fully serial). Results are identical at any setting.
  int threads = 0;
  // Optional demand matrix demand[chunk][node] (e.g. from
  // sim::generate_zipf_demand). When set, each chunk's ConFL instance
  // weights clients by their demand for that chunk instead of the paper's
  // uniform "every node wants every chunk" model.
  const std::vector<std::vector<double>>* demand = nullptr;
  // Contention engine used by ChunkInstanceEngine (and thus by
  // ApproxFairCaching's chunk loop). The stateless
  // try_build_chunk_instance below always rebuilds regardless.
  ContentionMode contention_mode = ContentionMode::kIncremental;
  // Hop radius for kSparse/kAuto: each facility row materializes only the
  // clients within this many hops (the producer's row is always full so
  // the dual growth terminates). ≤ 0 = unbounded — every reachable pair,
  // the bit-identical-to-dense setting.
  int contention_radius = 0;
  // Integrity-guard configuration for the stateful engines: audit cadence,
  // sampled rows, audit-time budget (core/engine_guard.h and
  // docs/ROBUSTNESS.md, "Integrity guard"). Defaults keep checksums
  // maintained and audit every 16th build.
  GuardOptions guard;
  // Test-only: called at the top of every ChunkInstanceEngine::build()
  // with the engine and the 1-based build index, before validation and
  // auditing. sim::StateFaultInjector binds corruption campaigns here;
  // production code leaves it empty.
  std::function<void(ChunkInstanceEngine&, int)> pre_build_hook;
};

// Resolves ContentionMode::kAuto for one network: kIncremental when the
// dense matrix is cheap (n ≤ 2048) or the radius is unbounded, kSparse
// when n is past the dense memory wall (n > 16384), and in between by
// sampling truncated BFS balls from ≤ 32 evenly spaced sources — sparse
// wins when the estimated row fill is ≤ 25% (the pasl-style density
// cutoff; see docs/PERF.md for the calibration).
ContentionMode choose_contention_mode(const graph::Graph& g, int radius);

// Typed guard on the sparse store's packed 24-bit column limit:
// kInvalidInput when `num_nodes >= SparseContention::kMaxNodes`. Applied
// by try_build_chunk_instance / ChunkInstanceEngine whenever the sparse
// engine is requested or resolved, instead of aborting inside the builder.
util::Status validate_sparse_node_limit(int num_nodes);

// Where the contention-build time went, cumulative over an engine's life:
// full builds (BFS trees + initial matrix, and every kRebuild chunk) vs
// sparse delta sweeps (kIncremental chunks after the first).
struct InstanceBuildStats {
  double tree_seconds = 0.0;
  double delta_seconds = 0.0;
};

// The returned instance borrows `problem.network`; it must outlive the
// instance. `chunk` selects the demand row when `options.demand` is set.
// Always uses the kRebuild engine (stateless, one-shot).
confl::ConflInstance build_chunk_instance(const FairCachingProblem& problem,
                                          const metrics::CacheState& state,
                                          const InstanceOptions& options,
                                          metrics::ChunkId chunk = 0);

// Non-throwing variant for untrusted input: kInvalidInput for a missing
// network, a state sized for a different network, or a demand matrix
// without a row for `chunk`. A successful build is identical to
// build_chunk_instance.
util::Result<confl::ConflInstance> try_build_chunk_instance(
    const FairCachingProblem& problem, const metrics::CacheState& state,
    const InstanceOptions& options, metrics::ChunkId chunk = 0);

// Stateful instance factory for a chunk loop over one problem. In
// kIncremental mode the contention buffers and pinned BFS trees persist
// between build() calls; hand each solved instance back via reclaim() so
// the next build() can delta-patch the matrix the solver just used instead
// of reconstructing it. Without reclaim() (or in kRebuild mode, or under
// kMinContention) every build() is a full rebuild — still correct, just
// slower. The problem's network must outlive the engine and must not
// change topology while it is alive.
class ChunkInstanceEngine {
 public:
  ChunkInstanceEngine(const FairCachingProblem& problem,
                      const InstanceOptions& options);

  // Same contract (validation, outputs) as try_build_chunk_instance on the
  // same (problem, state, options, chunk).
  util::Result<confl::ConflInstance> build(const metrics::CacheState& state,
                                           metrics::ChunkId chunk);

  // Returns the cost buffers of an instance produced by build() to the
  // incremental engine. The instance is consumed. No-op outside
  // kIncremental / kSparse modes.
  void reclaim(confl::ConflInstance&& instance);

  // Query-only synchronisation: brings the engine's contention costs in
  // line with `state` WITHOUT building a ConflInstance, so point queries
  // stay O(log row) instead of an n×n materialisation per caller
  // (core::OnlineFairCaching::access_cost / fetch, sim::ServingEngine).
  // kIncremental / kSparse delta-patch the live updater (the first call
  // pays the full build); the kRebuild fallback keeps a private dense
  // matrix that is rebuilt only when the stored counts actually changed.
  // kInvalidInput for a state sized for a different network. Audits ride
  // build()'s cadence only — sync() never consumes guard budget.
  util::Status sync(const metrics::CacheState& state);

  // True once sync() (or a build()/reclaim() round-trip) has costs home
  // and query_cost() may be called.
  bool query_ready() const;

  // Path contention cost c_ij against the last synced state. kSparse rows
  // answer graph::kInfCost for pairs outside the contention radius (the
  // producer's row is always full, so a producer fallback stays finite).
  // Requires query_ready().
  double query_cost(graph::NodeId i, graph::NodeId j) const;

  // True when build() delta-patches (kIncremental or kSparse under
  // hop-shortest paths).
  bool incremental() const {
    return updater_ != nullptr || sparse_updater_ != nullptr;
  }

  // The contention mode build() actually runs: the requested mode with
  // kAuto resolved (choose_contention_mode) and the hop-shortest-only
  // engines' kRebuild fallback applied. Never kAuto.
  ContentionMode mode_used() const { return mode_used_; }

  const InstanceBuildStats& stats() const { return stats_; }

  // Guard activity so far: audits run/skipped, mismatches, quarantines,
  // recovery time (core/engine_guard.h). Clean when nothing was detected.
  const CorruptionReport& guard_report() const { return guard_.report(); }

  // Test-only fault hook: forwards to the live stateful updater's
  // corrupt_for_testing (sim/state_faults.h drives this through
  // InstanceOptions::pre_build_hook). False in kRebuild mode (stateless —
  // nothing persists to corrupt) or before the first build.
  bool corrupt_for_testing(const util::StateCorruption& corruption);

 private:
  // Cadence-gated audit of the live updater, run *before* its update()
  // consumes the pinned trees: with cadence 1 a corrupted interval array
  // is caught before it can misdirect (or overrun) the delta sweep. On a
  // failed audit the updater is destroyed and recreated — the next
  // update() re-pins fresh trees with the stateless rebuild arithmetic.
  void guard_tick(int build_index);

  const FairCachingProblem* problem_;
  InstanceOptions options_;
  ContentionMode mode_used_ = ContentionMode::kRebuild;
  // Set at construction when the resolved mode cannot run at all (sparse
  // 24-bit column limit); build() then fails fast with this status.
  util::Status init_status_;
  // At most one of these is non-null, per mode_used_.
  std::unique_ptr<metrics::ContentionUpdater> updater_;
  std::unique_ptr<metrics::SparseContentionUpdater> sparse_updater_;
  // kRebuild-mode query cache for sync()/query_cost(): the dense matrix of
  // the last synced state plus the stored counts it reflects (rebuilt only
  // when they change). Never set in the stateful modes.
  std::unique_ptr<metrics::ContentionMatrix> query_matrix_;
  std::vector<int> query_counts_;
  InstanceBuildStats stats_;
  EngineGuard guard_;
  int builds_ = 0;          // build() calls so far (1-based index source)
  bool recovering_ = false;  // next update() is a quarantine rebuild
  int stale_restore_base_ = 0;  // stale restores from quarantined updaters
};

}  // namespace faircache::core
