#pragma once

// Builds the per-chunk ConFL instance of transform (8): fairness degree
// costs as facility costs, path contention costs as assignment costs, and
// contention edge costs for the dissemination tree — all read from the
// *current* cache state, which is how Algorithm 1 couples consecutive
// chunks (caching a chunk raises a node's f_i and its 1+S(k) factor).

#include "confl/confl.h"
#include "core/problem.h"
#include "metrics/fairness.h"
#include "util/status.h"

namespace faircache::core {

struct InstanceOptions {
  metrics::PathPolicy path_policy = metrics::PathPolicy::kHopShortest;
  double edge_scale = 1.0;  // the M multiplier on dissemination edges
  metrics::FairnessModel fairness;
  // Worker threads for the contention-matrix build (0 = the
  // util::parallel_threads() default, i.e. FAIRCACHE_THREADS or hardware
  // concurrency; 1 = fully serial). Results are identical at any setting.
  int threads = 0;
  // Optional demand matrix demand[chunk][node] (e.g. from
  // sim::generate_zipf_demand). When set, each chunk's ConFL instance
  // weights clients by their demand for that chunk instead of the paper's
  // uniform "every node wants every chunk" model.
  const std::vector<std::vector<double>>* demand = nullptr;
};

// The returned instance borrows `problem.network`; it must outlive the
// instance. `chunk` selects the demand row when `options.demand` is set.
confl::ConflInstance build_chunk_instance(const FairCachingProblem& problem,
                                          const metrics::CacheState& state,
                                          const InstanceOptions& options,
                                          metrics::ChunkId chunk = 0);

// Non-throwing variant for untrusted input: kInvalidInput for a missing
// network, a state sized for a different network, or a demand matrix
// without a row for `chunk`. A successful build is identical to
// build_chunk_instance.
util::Result<confl::ConflInstance> try_build_chunk_instance(
    const FairCachingProblem& problem, const metrics::CacheState& state,
    const InstanceOptions& options, metrics::ChunkId chunk = 0);

}  // namespace faircache::core
