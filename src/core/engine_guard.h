#pragma once

// Audit half of the integrity-guard runtime (docs/ROBUSTNESS.md,
// "Integrity guard"). The stateful contention engines maintain incremental
// checksums over their guarded blocks (util/integrity.h); an EngineGuard
// owned by core::ChunkInstanceEngine periodically (a) recomputes those
// checksums from the actual buffers and (b) cross-validates a few sampled
// rows against the stateless kRebuild arithmetic. Any mismatch quarantines
// the stateful updater: the engine drops the poisoned state and the next
// update re-pins fresh trees — the exact stateless rebuild — so every
// intermediate result remains a valid placement.
//
// Audits are budget-charged: cadence picks which builds audit, and
// budget_share caps cumulative audit time as a fraction of the engine's
// own build time, so the guard can never dominate the work it protects.
// Skipping an audit for budget never changes placements — audits only
// read solver state, they never feed it.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/integrity.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace faircache::core {

// Fixed at engine construction (`InstanceOptions::guard`).
struct GuardOptions {
  // Master switch. Disabled ⇒ the updaters skip checksum maintenance
  // entirely and no audit ever runs (the pre-guard fast path).
  bool enabled = true;
  // Audit every cadence-th build() (1 = every build; ≤ 0 disables audits
  // while keeping checksum maintenance on). Default 16 keeps the guard
  // within a few percent of the unguarded solve (docs/PERF.md).
  int cadence = 16;
  // Rows cross-validated per audit against the stateless recompute.
  int sampled_rows = 2;
  // Cumulative audit seconds allowed per second of engine build time;
  // ≥ 1 never throttles, ≤ 0 skips every audit (maintenance only).
  double budget_share = 0.25;
};

// One detected corruption, stamped with the 1-based build() index whose
// audit caught it.
struct CorruptionEvent {
  int build = 0;
  std::string what;
};

// Guard activity over an engine's (or solve's) lifetime; surfaced through
// core::SolveReport / RepairReport and merged across engines.
struct CorruptionReport {
  int audits = 0;             // audits actually executed
  int audits_skipped = 0;     // due audits skipped for budget
  long rows_checked = 0;      // sampled-row cross-validations run
  int checksum_mismatches = 0;
  int row_mismatches = 0;
  int stale_restores = 0;     // epoch-mismatched restores dropped
  int quarantines = 0;        // updaters torn down and rebuilt
  double audit_seconds = 0.0;
  double recovery_seconds = 0.0;  // full rebuilds forced by quarantine
  std::vector<CorruptionEvent> events;

  // No corruption observed (budget skips and audit effort are fine).
  bool clean() const {
    return checksum_mismatches == 0 && row_mismatches == 0 &&
           stale_restores == 0 && quarantines == 0 && events.empty();
  }

  void merge(const CorruptionReport& other) {
    audits += other.audits;
    audits_skipped += other.audits_skipped;
    rows_checked += other.rows_checked;
    checksum_mismatches += other.checksum_mismatches;
    row_mismatches += other.row_mismatches;
    stale_restores += other.stale_restores;
    quarantines += other.quarantines;
    audit_seconds += other.audit_seconds;
    recovery_seconds += other.recovery_seconds;
    events.insert(events.end(), other.events.begin(), other.events.end());
  }
};

// Per-engine audit scheduler + verdict bookkeeping. The audited updater
// only needs the integrity surface the metrics updaters share: ready(),
// checksums_enabled(), maintained_digest(), recompute_digest(),
// verify_row(), graph().
class EngineGuard {
 public:
  EngineGuard() = default;
  explicit EngineGuard(const GuardOptions& options) : options_(options) {}

  const GuardOptions& options() const { return options_; }

  // Whether build `build_index` (1-based) should audit, charging the
  // budget against `build_seconds` of cumulative engine build time. Due
  // audits skipped for budget are counted in the report.
  bool audit_due(int build_index, double build_seconds) {
    if (!options_.enabled || options_.cadence <= 0) return false;
    if (build_index <= 0 || build_index % options_.cadence != 0) {
      return false;
    }
    if (options_.budget_share <= 0.0 ||
        (options_.budget_share < 1.0 &&
         report_.audit_seconds > options_.budget_share * build_seconds)) {
      ++report_.audits_skipped;
      return false;
    }
    return true;
  }

  // Runs one audit; false means corruption was found and the caller must
  // quarantine. Row sampling is deterministic in build_index, so a given
  // corruption is caught at the same build at any thread count.
  template <typename Updater>
  bool audit(const Updater& updater, int build_index) {
    util::Stopwatch timer;
    ++report_.audits;
    bool ok = true;
    if (updater.checksums_enabled()) {
      const util::StateDigest want = updater.recompute_digest();
      if (const char* block = util::first_digest_mismatch(
              updater.maintained_digest(), want)) {
        ++report_.checksum_mismatches;
        report_.events.push_back(
            {build_index, std::string("checksum mismatch in block '") +
                              block + "'"});
        ok = false;
      }
    }
    if (ok) {  // digest failure short-circuits: the buffers may be unsafe
      const int n = updater.graph().num_nodes();
      std::uint64_t rng =
          util::kIntegrityPhi ^ static_cast<std::uint64_t>(build_index);
      for (int s = 0; s < options_.sampled_rows && n > 0; ++s) {
        const auto row = static_cast<graph::NodeId>(
            util::splitmix64(rng) % static_cast<std::uint64_t>(n));
        ++report_.rows_checked;
        if (!updater.verify_row(row)) {
          ++report_.row_mismatches;
          report_.events.push_back(
              {build_index, "row " + std::to_string(row) +
                                " diverges from stateless recompute"});
          ok = false;
          break;
        }
      }
    }
    report_.audit_seconds += timer.elapsed_seconds();
    return ok;
  }

  void note_quarantine(int build_index) {
    ++report_.quarantines;
    report_.events.push_back({build_index, "updater quarantined"});
  }

  void add_recovery_seconds(double seconds) {
    report_.recovery_seconds += seconds;
  }

  // Absolute count of epoch-mismatched restores seen so far (the engine
  // resyncs this after every reclaim; monotone by construction).
  void set_stale_restores(int count) { report_.stale_restores = count; }

  const CorruptionReport& report() const { return report_; }

 private:
  GuardOptions options_;
  CorruptionReport report_;
};

}  // namespace faircache::core
