#include "core/validate.h"

#include <limits>

namespace faircache::core {

util::Status validate_problem(const FairCachingProblem& problem) {
  using util::Status;
  if (problem.network == nullptr) {
    return Status::invalid_input("problem needs a network");
  }
  const int n = problem.network->num_nodes();
  if (problem.producer < 0 || problem.producer >= n) {
    return Status::invalid_input("producer out of range");
  }
  if (problem.num_chunks < 0) {
    return Status::invalid_input("negative chunk count");
  }
  if (n > 0 && problem.num_chunks > std::numeric_limits<int>::max() / n) {
    return Status::invalid_input("chunk count times node count overflows");
  }
  if (!problem.capacities.empty()) {
    if (static_cast<int>(problem.capacities.size()) != n) {
      return Status::invalid_input("capacity vector size mismatch");
    }
    for (int cap : problem.capacities) {
      if (cap < 0) return Status::invalid_input("negative cache capacity");
    }
  } else if (problem.uniform_capacity < 0) {
    return Status::invalid_input("negative cache capacity");
  }
  if (!problem.network->is_connected()) {
    return Status::infeasible("network is disconnected");
  }
  return Status();
}

}  // namespace faircache::core
