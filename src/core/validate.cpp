#include "core/validate.h"

#include <limits>

namespace faircache::core {

util::Status validate_problem(const FairCachingProblem& problem) {
  using util::Status;
  if (problem.network == nullptr) {
    return Status::invalid_input("problem needs a network");
  }
  const int n = problem.network->num_nodes();
  if (problem.producer < 0 || problem.producer >= n) {
    return Status::invalid_input("producer out of range");
  }
  if (problem.num_chunks < 0) {
    return Status::invalid_input("negative chunk count");
  }
  if (n > 0 && problem.num_chunks > std::numeric_limits<int>::max() / n) {
    return Status::invalid_input("chunk count times node count overflows");
  }
  if (!problem.capacities.empty()) {
    if (static_cast<int>(problem.capacities.size()) != n) {
      return Status::invalid_input("capacity vector size mismatch");
    }
    for (int cap : problem.capacities) {
      if (cap < 0) return Status::invalid_input("negative cache capacity");
    }
  } else if (problem.uniform_capacity < 0) {
    return Status::invalid_input("negative cache capacity");
  }
  if (!problem.network->is_connected()) {
    return Status::infeasible("network is disconnected");
  }
  return Status();
}

util::Status validate_placement(const metrics::CacheState& state,
                                int num_chunks,
                                const std::vector<char>* alive) {
  using util::Status;
  const int n = state.num_nodes();
  if (num_chunks < 0) {
    return Status::invalid_input("negative chunk count");
  }
  if (alive != nullptr && static_cast<int>(alive->size()) != n) {
    return Status::invalid_input("liveness mask size mismatch");
  }
  for (graph::NodeId v = 0; v < n; ++v) {
    const auto& chunks = state.chunks_on(v);
    if (v == state.producer() && !chunks.empty()) {
      return Status::invalid_input("producer caches chunks");
    }
    if (static_cast<int>(chunks.size()) > state.capacity(v)) {
      return Status::invalid_input("node " + std::to_string(v) +
                                   " exceeds its cache capacity");
    }
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      if (chunks[i] < 0 || chunks[i] >= num_chunks) {
        return Status::invalid_input("node " + std::to_string(v) +
                                     " caches an out-of-range chunk id");
      }
      if (i > 0 && chunks[i] <= chunks[i - 1]) {
        return Status::invalid_input("node " + std::to_string(v) +
                                     " holds a duplicate chunk");
      }
    }
    if (alive != nullptr && (*alive)[static_cast<std::size_t>(v)] == 0 &&
        !chunks.empty()) {
      return Status::invalid_input("dead node " + std::to_string(v) +
                                   " still holds replicas");
    }
  }
  return Status();
}

}  // namespace faircache::core
