#pragma once

// Compact byte decoder shared by the libFuzzer harnesses and the corpus
// replay test. An arbitrary byte string maps to a small fair-caching
// problem plus solver options; every construction step goes through the
// validated non-throwing entry points (graph::Graph::try_add_edge,
// core::validate_problem, ...), so the harnesses exercise exactly the
// hardened input boundary a hostile caller would hit. The decoder never
// rejects input — malformed bytes produce malformed problems on purpose
// (disconnected graphs, mis-sized capacity vectors, out-of-range
// producers), which the validators must classify, not crash on.

#include <cstddef>
#include <cstdint>

#include "core/approx.h"
#include "core/problem.h"
#include "graph/graph.h"
#include "sim/serving.h"

namespace faircache::fuzz {

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool exhausted() const { return pos_ >= size_; }

  // Next byte; 0 once the input is exhausted (keeps decoding total).
  std::uint8_t u8() { return exhausted() ? 0 : data_[pos_++]; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
};

// The decoded problem owns its network; `problem.network` points at it, so
// a DecodedProblem must stay put while the problem is in use (the harness
// keeps it on the stack — never copy or move it afterwards).
struct DecodedProblem {
  graph::Graph network;
  core::FairCachingProblem problem;
  core::ApproxConfig config;
  sim::ServingConfig serving;  // solver options mirrored into .online.approx
  bool serving_adaptive = false;  // drive the adaptive-gradient policy
};

inline void decode_problem(const std::uint8_t* data, std::size_t size,
                           DecodedProblem& out) {
  ByteReader in(data, size);

  const int n = 2 + in.u8() % 31;  // 2..32 nodes
  out.network = graph::Graph(n);

  // Deliberately allow an out-of-range producer one time in eight so the
  // validator's range check stays covered.
  const std::uint8_t producer_byte = in.u8();
  out.problem.producer = (producer_byte & 0x7) == 0
                             ? static_cast<graph::NodeId>(n + producer_byte)
                             : static_cast<graph::NodeId>(producer_byte % n);
  out.problem.num_chunks = in.u8() % 9;
  out.problem.uniform_capacity = in.u8() % 6;

  // Occasionally use an explicit capacity vector, sometimes mis-sized.
  const std::uint8_t cap_mode = in.u8();
  if ((cap_mode & 0x3) == 0) {
    const int len = (cap_mode & 0x4) != 0 ? n : n - 1;
    for (int i = 0; i < len; ++i) {
      out.problem.capacities.push_back(in.u8() % 6);
    }
  }

  // Solver options: positive steps, small span thresholds, both growth
  // modes, both Steiner engines, every contention mode. Single-threaded —
  // fuzz iterations must stay cheap.
  const std::uint8_t opt = in.u8();
  out.config.confl.growth = (opt & 0x1) != 0
                                ? confl::GrowthMode::kEventDriven
                                : confl::GrowthMode::kFixedStep;
  out.config.confl.alpha_step = 0.25 * (1 + ((opt >> 1) & 0x7));
  out.config.confl.gamma_step = 0.5 * (1 + ((opt >> 4) & 0x7));
  out.config.confl.steiner_engine = (opt & 0x80) != 0
                                        ? steiner::Engine::kVoronoi
                                        : steiner::Engine::kClosureKmb;
  // The span byte's low bits pick the threshold; its high bit selects the
  // contention engine, so fuzz_solve drives both the per-chunk rebuild and
  // the incremental delta-update paths.
  const std::uint8_t span_byte = in.u8();
  out.config.confl.span_threshold = 1 + span_byte % 4;
  out.config.instance.contention_mode =
      (span_byte & 0x80) != 0 ? core::ContentionMode::kRebuild
                              : core::ContentionMode::kIncremental;
  // The sparse byte drives the sparse contention engine: its low two bits
  // escalate the mode (1 → kSparse, 2 → kAuto, else the span byte's
  // choice stands), the remaining six are the truncation radius — 0
  // (unbounded) through 63, far past any 32-node diameter.
  const std::uint8_t sparse_byte = in.u8();
  if ((sparse_byte & 0x3) == 1) {
    out.config.instance.contention_mode = core::ContentionMode::kSparse;
  } else if ((sparse_byte & 0x3) == 2) {
    out.config.instance.contention_mode = core::ContentionMode::kAuto;
  }
  out.config.instance.contention_radius = sparse_byte >> 2;
  // The guard byte sweeps the integrity-guard configuration: low two bits
  // are the audit cadence (0 = maintenance without audits, which also
  // disables the guard one time in four), the next two the sampled-row
  // count. budget_share stays 1 so every due audit actually runs — the
  // fuzzer should exercise the audit arithmetic, not the throttle.
  const std::uint8_t guard_byte = in.u8();
  out.config.instance.guard.enabled = (guard_byte & 0x3) != 0;
  out.config.instance.guard.cadence = guard_byte & 0x3;
  out.config.instance.guard.sampled_rows = (guard_byte >> 2) & 0x3;
  out.config.instance.guard.budget_share = 1.0;
  out.config.confl.threads = 1;
  out.config.instance.threads = 1;

  // The serving byte drives the trace-replay harness (fuzz_serving): bit 0
  // picks the replacement policy, bit 1 enables demand drift, bits 2–3 the
  // re-optimization cadence, bits 4–6 the replay length (32..256
  // requests), and the high bit swaps in the adaptive-gradient external
  // policy. The byte doubles as the trace seed so distinct inputs replay
  // distinct request streams.
  const std::uint8_t serving_byte = in.u8();
  out.serving.online.replacement =
      (serving_byte & 0x1) != 0 ? core::ReplacementPolicy::kEvictOldest
                                : core::ReplacementPolicy::kNone;
  out.serving.requests = 32 + 32 * ((serving_byte >> 4) & 0x7);
  out.serving.drift_every = (serving_byte & 0x2) != 0 ? 17 : 0;
  out.serving.reopt_every =
      ((serving_byte >> 2) & 0x3) == 0 ? 0 : 40 * ((serving_byte >> 2) & 0x3);
  out.serving.reopt_work_cap = 64;  // constantly expires mid-solve
  out.serving.adapt_every = 16;
  out.serving.samples = 4;
  out.serving.seed = serving_byte;
  out.serving_adaptive = (serving_byte & 0x80) != 0;
  out.serving.online.approx = out.config;

  // Edge list: consume the rest of the input as endpoint pairs. Self
  // loops and duplicates are rejected by try_add_edge (statuses ignored
  // — that IS the path under test); sparse inputs yield disconnected
  // graphs, which the problem validator must flag as infeasible.
  const int edge_budget = 6 * n;
  for (int e = 0; e < edge_budget && !in.exhausted(); ++e) {
    const auto u = static_cast<graph::NodeId>(in.u8() % n);
    const auto v = static_cast<graph::NodeId>(in.u8() % n);
    (void)out.network.try_add_edge(u, v);
  }

  out.problem.network = &out.network;
}

}  // namespace faircache::fuzz
