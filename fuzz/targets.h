#pragma once

// Entry points of the fuzz target bodies, callable outside libFuzzer.
// The standalone fuzzers (-DFAIRCACHE_FUZZ=ON, clang) wrap these in
// LLVMFuzzerTestOneInput; tests/fuzz_corpus_test.cpp replays the
// checked-in corpus through them in every plain build, so any input the
// fuzzer ever minimized stays a permanent regression test.

#include <cstddef>
#include <cstdint>

namespace faircache::fuzz {

// Decode → validate → build one ConFL instance. Never throws or aborts on
// any input; malformed problems must come back as typed statuses.
int run_instance_target(const std::uint8_t* data, std::size_t size);

// Decode → validate → anytime solve under a tiny work-unit budget.
// Verifies the anytime contract: an OK result is complete and feasible, an
// error is kInvalidInput or kInfeasible — never a budget code, never a
// throw.
int run_solve_target(const std::uint8_t* data, std::size_t size);

// Decode → replay a short serving trace (online driver or the
// adaptive-gradient policy, per the serving byte). Verifies exact request
// accounting, capacity feasibility of the final placement, and typed
// errors only.
int run_serving_target(const std::uint8_t* data, std::size_t size);

}  // namespace faircache::fuzz
