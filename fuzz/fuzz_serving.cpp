// Fuzz target: the trace-driven serving engine end to end. Arbitrary
// bytes decode to a problem plus a short replay config (replacement /
// drift / re-optimization under a tiny work cap, or the adaptive-gradient
// external policy), and the whole stream is served. Oracle: every request
// is accounted exactly once (local + relay + producer == requests), the
// final placement respects capacities, and an error is kInvalidInput or
// kInfeasible — never a throw, never a budget code.

#include <cstdlib>

#include "baselines/adaptive_gradient.h"
#include "fuzz/decoder.h"
#include "fuzz/targets.h"
#include "sim/serving.h"

namespace faircache::fuzz {

int run_serving_target(const std::uint8_t* data, std::size_t size) {
  DecodedProblem d;
  decode_problem(data, size, d);

  sim::ServingEngine engine(d.problem, d.serving);
  const util::Result<sim::ServingResult> result =
      [&]() -> util::Result<sim::ServingResult> {
    if (!d.serving_adaptive) return engine.run();
    // The adaptive policy needs a validated problem up front; mirror the
    // engine's own gate so construction never throws on malformed input.
    if (util::Status status = core::validate_problem(d.problem);
        !status.ok()) {
      return status;
    }
    if (d.problem.num_chunks < 1) {
      return util::Status::invalid_input("no chunk catalog");
    }
    baselines::AdaptiveGradientCaching policy(d.problem);
    return engine.run(&policy);
  }();

  if (!result.ok()) {
    if (result.code() != util::StatusCode::kInvalidInput &&
        result.code() != util::StatusCode::kInfeasible) {
      std::abort();
    }
    return 0;
  }

  const sim::ServingResult& r = result.value();
  if (r.totals.requests != d.serving.requests) std::abort();
  if (r.totals.hits_local + r.totals.hits_relay + r.totals.producer_fetches !=
      r.totals.requests) {
    std::abort();
  }
  for (graph::NodeId v = 0; v < d.network.num_nodes(); ++v) {
    if (v == d.problem.producer) continue;
    if (r.state.used(v) > r.state.capacity(v)) std::abort();
  }
  // The hash must be a pure function of the result (determinism is checked
  // elsewhere; here it just must not crash on any shape).
  (void)sim::serving_result_hash(r);
  return 0;
}

}  // namespace faircache::fuzz

#ifdef FAIRCACHE_FUZZ_STANDALONE
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return faircache::fuzz::run_serving_target(data, size);
}
#endif
