// Fuzz target: the anytime solve path end to end. Arbitrary bytes decode
// to a problem which is solved under a tiny work-unit budget, so the
// harness constantly exercises mid-phase expiry and the greedy fallback.
// Oracle: an OK result covers every chunk and respects capacities; an
// error is kInvalidInput or kInfeasible — a budget code escaping as an
// error, or any throw, is a finding.

#include <cstdlib>

#include "core/approx.h"
#include "fuzz/decoder.h"
#include "fuzz/targets.h"

namespace faircache::fuzz {

int run_solve_target(const std::uint8_t* data, std::size_t size) {
  DecodedProblem d;
  decode_problem(data, size, d);

  // The budget byte spans "expires immediately" to "usually completes".
  const std::uint64_t cap = size > 0 ? data[size - 1] % 64 : 0;
  const util::RunBudget budget = util::RunBudget::work_units(cap);

  core::ApproxFairCaching algorithm(d.config);
  core::SolveReport report;
  util::Result<core::FairCachingResult> result =
      algorithm.solve(d.problem, budget, &report);

  if (!result.ok()) {
    if (result.code() != util::StatusCode::kInvalidInput &&
        result.code() != util::StatusCode::kInfeasible) {
      std::abort();
    }
    return 0;
  }

  const core::FairCachingResult& r = result.value();
  if (static_cast<int>(r.placements.size()) != d.problem.num_chunks) {
    std::abort();
  }
  if (report.chunks_solved() +
          static_cast<int>(report.degraded_chunks.size()) !=
      report.chunks_total) {
    std::abort();
  }
  // Feasibility: no node stores more chunks than its capacity.
  for (graph::NodeId v = 0; v < d.network.num_nodes(); ++v) {
    if (v == d.problem.producer) continue;
    if (r.state.used(v) > r.state.capacity(v)) std::abort();
  }
  return 0;
}

}  // namespace faircache::fuzz

#ifdef FAIRCACHE_FUZZ_STANDALONE
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return faircache::fuzz::run_solve_target(data, size);
}
#endif
