// Fuzz target: the instance-construction boundary. Arbitrary bytes decode
// to a problem; validation must classify it with a typed Status and a
// validated problem must always yield a well-formed ConFL instance. Any
// uncaught exception or abort is a finding.

#include <cstdlib>

#include "confl/confl.h"
#include "core/instance_builder.h"
#include "core/validate.h"
#include "fuzz/decoder.h"
#include "fuzz/targets.h"

namespace faircache::fuzz {

int run_instance_target(const std::uint8_t* data, std::size_t size) {
  DecodedProblem d;
  decode_problem(data, size, d);

  const util::Status status = core::validate_problem(d.problem);
  if (!status.ok()) {
    // Rejections must carry one of the two input-classification codes.
    if (status.code() != util::StatusCode::kInvalidInput &&
        status.code() != util::StatusCode::kInfeasible) {
      std::abort();
    }
    return 0;
  }

  const metrics::CacheState state = d.problem.make_initial_state();
  util::Result<confl::ConflInstance> instance = core::try_build_chunk_instance(
      d.problem, state, d.config.instance, /*chunk=*/0);
  // A problem that passed validation must build, and the built instance
  // must itself pass the solver's instance validator.
  if (!instance.ok()) std::abort();
  if (!confl::validate_confl_instance(instance.value()).ok()) std::abort();
  return 0;
}

}  // namespace faircache::fuzz

#ifdef FAIRCACHE_FUZZ_STANDALONE
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return faircache::fuzz::run_instance_target(data, size);
}
#endif
